//! Chunk-based accumulation (§V-A).
//!
//! "When using low-precision values, [sequential systolic addition] often
//! leads to numerical stability problems due to swamping. A popular way of
//! solving this issue for low-precision training is chunk-based additions,
//! which gradually adds up the elements in chunks so that there is less
//! divergence between the exponents of the partial sums."
//!
//! This module provides a functional reference for both behaviours so the
//! NPU's adder-tree organization (which realizes chunked addition
//! structurally) can be validated numerically.

use gradpim_optim::quant::f16_round_trip;

/// Sums `xs` sequentially with the running sum rounded to binary16 after
/// every addition — the swamping-prone behaviour of a naive low-precision
/// accumulator.
pub fn naive_f16_sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc = f16_round_trip(acc + x);
    }
    acc
}

/// Sums `xs` in chunks of `chunk`: each chunk accumulates in binary16, and
/// the per-chunk partials are combined pairwise (tree reduction), keeping
/// partial-sum exponents close — the §V-A chunk-based addition.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn chunked_f16_sum(xs: &[f32], chunk: usize) -> f32 {
    assert!(chunk > 0, "chunk width must be non-zero");
    let mut partials: Vec<f32> = xs.chunks(chunk).map(naive_f16_sum).collect();
    // Pairwise tree reduction over the partials, still in f16.
    while partials.len() > 1 {
        partials = partials
            .chunks(2)
            .map(|p| if p.len() == 2 { f16_round_trip(p[0] + p[1]) } else { p[0] })
            .collect();
    }
    partials.first().copied().unwrap_or(0.0)
}

/// Exact (f64) reference sum.
pub fn exact_sum(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| x as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(chunked_f16_sum(&[], 64), 0.0);
        assert_eq!(chunked_f16_sum(&[1.5], 64), 1.5);
        assert_eq!(naive_f16_sum(&[]), 0.0);
    }

    #[test]
    fn chunked_matches_naive_for_small_inputs() {
        let xs: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        assert_eq!(naive_f16_sum(&xs), chunked_f16_sum(&xs, 64));
    }

    #[test]
    fn swamping_demonstrated_and_fixed() {
        // 4096 values of 1.0: the naive f16 accumulator saturates once the
        // running sum reaches 2048 (adding 1.0 to 2048 in f16 is a no-op —
        // swamping). Chunked accumulation survives.
        let xs = vec![1.0f32; 4096];
        let exact = exact_sum(&xs);
        let naive = naive_f16_sum(&xs) as f64;
        let chunked = chunked_f16_sum(&xs, 64) as f64;
        assert!(naive < exact * 0.51, "naive {naive} should swamp");
        assert!((chunked - exact).abs() / exact < 0.01, "chunked {chunked}");
    }

    #[test]
    fn chunked_error_beats_naive_on_random_data() {
        // Deterministic pseudo-random positive data.
        let xs: Vec<f32> =
            (0..8192).map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 / 999.0).collect();
        let exact = exact_sum(&xs);
        let naive_err = (naive_f16_sum(&xs) as f64 - exact).abs();
        let chunk_err = (chunked_f16_sum(&xs, 64) as f64 - exact).abs();
        assert!(chunk_err < naive_err, "chunked err {chunk_err} vs naive err {naive_err}");
    }

    #[test]
    #[should_panic(expected = "chunk width")]
    fn zero_chunk_panics() {
        chunked_f16_sum(&[1.0], 0);
    }
}
