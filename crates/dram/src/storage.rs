//! Sparse functional storage: actual bytes behind the timing model.
//!
//! Rows are allocated lazily (zero-filled) on first touch, so simulating a
//! 32 GiB memory system costs only what the workload touches. Storage is
//! optional — performance-only simulations skip it entirely.
//!
//! The row map is a `BTreeMap`, not a `HashMap`: anything enumerating
//! resident rows (footprint traces, [`Storage::touched_rows`]) must see
//! them in the same order on every run, or downstream reports stop being
//! byte-identical across machines and insertion orders.

use std::collections::BTreeMap;

/// Byte storage for one channel, keyed by (flat bank index, row).
#[derive(Debug, Clone, Default)]
pub struct Storage {
    row_bytes: usize,
    burst_bytes: usize,
    rows: BTreeMap<(usize, u32), Vec<u8>>,
}

impl Storage {
    /// Creates storage for rows of `columns × burst_bytes` bytes.
    pub fn new(columns: usize, burst_bytes: usize) -> Self {
        Self { row_bytes: columns * burst_bytes, burst_bytes, rows: BTreeMap::new() }
    }

    /// Number of rows touched so far (footprint tracking).
    pub fn resident_rows(&self) -> usize {
        self.rows.len()
    }

    /// Every (flat bank index, row) touched so far, in key order —
    /// deterministic regardless of the order the workload touched them.
    pub fn touched_rows(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.rows.keys().copied()
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.rows.len() * self.row_bytes
    }

    fn row_mut(&mut self, bank: usize, row: u32) -> &mut Vec<u8> {
        let row_bytes = self.row_bytes;
        self.rows.entry((bank, row)).or_insert_with(|| vec![0; row_bytes])
    }

    /// Reads one burst column. Untouched rows read as zeros.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range for the row size.
    pub fn read_col(&self, bank: usize, row: u32, col: u32) -> Vec<u8> {
        let off = col as usize * self.burst_bytes;
        assert!(off + self.burst_bytes <= self.row_bytes, "column {col} out of range");
        match self.rows.get(&(bank, row)) {
            Some(r) => r[off..off + self.burst_bytes].to_vec(),
            None => vec![0; self.burst_bytes],
        }
    }

    /// Writes one burst column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `data` is not exactly one burst.
    pub fn write_col(&mut self, bank: usize, row: u32, col: u32, data: &[u8]) {
        assert_eq!(data.len(), self.burst_bytes, "burst size mismatch");
        let off = col as usize * self.burst_bytes;
        assert!(off + self.burst_bytes <= self.row_bytes, "column {col} out of range");
        let burst = self.burst_bytes;
        let r = self.row_mut(bank, row);
        r[off..off + burst].copy_from_slice(data);
    }

    /// Backdoor: copies `data` into consecutive columns starting at
    /// (`bank`, `row`, `col`), spilling into following rows of the same bank
    /// if needed. Used to initialise test arrays without paying simulation
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not burst-aligned.
    pub fn poke(&mut self, bank: usize, mut row: u32, mut col: u32, data: &[u8]) {
        assert_eq!(data.len() % self.burst_bytes, 0, "data must be burst-aligned");
        for chunk in data.chunks(self.burst_bytes) {
            self.write_col(bank, row, col, chunk);
            col += 1;
            if col as usize * self.burst_bytes >= self.row_bytes {
                col = 0;
                row += 1;
            }
        }
    }

    /// Backdoor: reads `len` bytes starting at (`bank`, `row`, `col`),
    /// following the same layout as [`Storage::poke`].
    ///
    /// # Panics
    ///
    /// Panics if `len` is not burst-aligned.
    pub fn peek(&self, bank: usize, mut row: u32, mut col: u32, len: usize) -> Vec<u8> {
        assert_eq!(len % self.burst_bytes, 0, "length must be burst-aligned");
        let mut out = Vec::with_capacity(len);
        for _ in 0..len / self.burst_bytes {
            out.extend_from_slice(&self.read_col(bank, row, col));
            col += 1;
            if col as usize * self.burst_bytes >= self.row_bytes {
                col = 0;
                row += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_reads_are_zero() {
        let s = Storage::new(128, 64);
        assert_eq!(s.read_col(0, 0, 0), vec![0u8; 64]);
        assert_eq!(s.resident_rows(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = Storage::new(128, 64);
        let data: Vec<u8> = (0..64).collect();
        s.write_col(3, 7, 11, &data);
        assert_eq!(s.read_col(3, 7, 11), data);
        // Neighbouring column untouched.
        assert_eq!(s.read_col(3, 7, 12), vec![0u8; 64]);
        assert_eq!(s.resident_rows(), 1);
    }

    #[test]
    fn poke_peek_spill_across_rows() {
        let mut s = Storage::new(2, 64); // tiny 2-column rows
        let data: Vec<u8> = (0..=255).collect(); // 4 bursts = 2 rows
        s.poke(0, 10, 0, &data);
        assert_eq!(s.peek(0, 10, 0, 256), data);
        assert_eq!(s.resident_rows(), 2);
    }

    #[test]
    fn touched_rows_order_is_insertion_independent() {
        // The footprint enumeration must not depend on touch order (the
        // old HashMap-backed map leaked insertion/hash order here).
        let keys = [(3usize, 7u32), (0, 9), (2, 1), (0, 2), (3, 0)];
        let mut fwd = Storage::new(4, 64);
        for &(b, r) in &keys {
            fwd.write_col(b, r, 0, &[1u8; 64]);
        }
        let mut rev = Storage::new(4, 64);
        for &(b, r) in keys.iter().rev() {
            rev.write_col(b, r, 0, &[1u8; 64]);
        }
        let f: Vec<_> = fwd.touched_rows().collect();
        let r: Vec<_> = rev.touched_rows().collect();
        assert_eq!(f, r);
        assert_eq!(f, vec![(0, 2), (0, 9), (2, 1), (3, 0), (3, 7)], "sorted key order");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_bounds_checked() {
        let s = Storage::new(4, 64);
        s.read_col(0, 0, 4);
    }

    #[test]
    #[should_panic(expected = "burst size mismatch")]
    fn burst_size_checked() {
        let mut s = Storage::new(4, 64);
        s.write_col(0, 0, 0, &[0u8; 32]);
    }
}
