//! Physical address decomposition and the paper's Fig. 7 mapping.
//!
//! GradPIM needs corresponding elements of different parameter arrays (θ, v,
//! g, …) to land in the *same bank group but different banks* (§V-B). The
//! paper achieves this with the mapping of Fig. 7:
//!
//! ```text
//! MSB  | bank | row | (rank | channel) | bank group | column | byte |  LSB
//! ```
//!
//! * bank bits at the MSB → arrays allocated in different quarters of the
//!   address space automatically occupy different banks;
//! * bank-group bits just above the column bits → consecutive rows of data
//!   interleave across bank groups, giving maximum bank-group-level
//!   parallelism;
//! * rank/channel bits sit between them, which "does not violate the same
//!   bank group, different bank criteria".

use crate::config::DramConfig;

/// A fully decoded DRAM location. `column` indexes 64-byte bursts within a
/// row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Address {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bankgroup: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Burst-granularity column within the row.
    pub column: usize,
}

impl Address {
    /// Flat index of this address's bank within a channel
    /// (`rank × banks_per_rank + bankgroup × banks_per_group + bank`).
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        (self.rank * cfg.bankgroups + self.bankgroup) * cfg.banks_per_group + self.bank
    }

    /// Flat index of this address's bank group within a channel.
    pub fn flat_bankgroup(&self, cfg: &DramConfig) -> usize {
        self.rank * cfg.bankgroups + self.bankgroup
    }
}

/// An address-bit interleaving scheme.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressMapping {
    /// The paper's Fig. 7 GradPIM mapping: bank bits at the MSB, bank-group
    /// interleaving right above the column bits.
    #[default]
    GradPim,
    /// A conventional baseline mapping (row ‖ rank ‖ bank ‖ bank group ‖
    /// column ‖ byte): consecutive arrays do *not* stay bank-aligned, so
    /// multi-array updates suffer bank conflicts — the ablation of
    /// `abl_mapping`.
    RowInterleaved,
}

fn log2(x: usize) -> u32 {
    debug_assert!(x.is_power_of_two(), "organization sizes must be powers of two, got {x}");
    x.trailing_zeros()
}

impl AddressMapping {
    /// Decodes a byte address into a DRAM location under this mapping.
    ///
    /// The low `log2(burst_bytes)` bits (byte-within-burst) are dropped:
    /// transactions are burst-aligned.
    pub fn decode(self, addr: u64, cfg: &DramConfig) -> Address {
        let mut a = addr >> log2(cfg.burst_bytes);
        let mut take = |n: u32| {
            let v = (a & ((1u64 << n) - 1)) as usize;
            a >>= n;
            v
        };
        match self {
            AddressMapping::GradPim => {
                let column = take(log2(cfg.columns));
                let bankgroup = take(log2(cfg.bankgroups));
                let rank = take(log2(cfg.ranks));
                let channel = take(log2(cfg.channels));
                let row = take(log2(cfg.rows));
                let bank = take(log2(cfg.banks_per_group));
                Address { channel, rank, bankgroup, bank, row, column }
            }
            AddressMapping::RowInterleaved => {
                let column = take(log2(cfg.columns));
                let bankgroup = take(log2(cfg.bankgroups));
                let bank = take(log2(cfg.banks_per_group));
                let rank = take(log2(cfg.ranks));
                let channel = take(log2(cfg.channels));
                let row = take(log2(cfg.rows));
                Address { channel, rank, bankgroup, bank, row, column }
            }
        }
    }

    /// Encodes a DRAM location back into a byte address (inverse of
    /// [`AddressMapping::decode`]).
    pub fn encode(self, loc: Address, cfg: &DramConfig) -> u64 {
        let mut addr = 0u64;
        let mut shift = log2(cfg.burst_bytes);
        let mut put = |v: usize, n: u32| {
            addr |= (v as u64) << shift;
            shift += n;
        };
        match self {
            AddressMapping::GradPim => {
                put(loc.column, log2(cfg.columns));
                put(loc.bankgroup, log2(cfg.bankgroups));
                put(loc.rank, log2(cfg.ranks));
                put(loc.channel, log2(cfg.channels));
                put(loc.row, log2(cfg.rows));
                put(loc.bank, log2(cfg.banks_per_group));
            }
            AddressMapping::RowInterleaved => {
                put(loc.column, log2(cfg.columns));
                put(loc.bankgroup, log2(cfg.bankgroups));
                put(loc.bank, log2(cfg.banks_per_group));
                put(loc.rank, log2(cfg.ranks));
                put(loc.channel, log2(cfg.channels));
                put(loc.row, log2(cfg.rows));
            }
        }
        addr
    }

    /// Total addressable bytes under `cfg`.
    pub fn capacity_bytes(self, cfg: &DramConfig) -> u64 {
        (cfg.channels * cfg.ranks * cfg.bankgroups * cfg.banks_per_group) as u64
            * cfg.rows as u64
            * cfg.columns as u64
            * cfg.burst_bytes as u64
    }

    /// Size in bytes of the contiguous region mapped to a single bank index
    /// under the GradPim mapping (arrays are aligned to this boundary so
    /// matching elements share a bank group, §V-B).
    ///
    /// # Panics
    ///
    /// Panics if called on a mapping without MSB bank bits.
    pub fn bank_region_bytes(self, cfg: &DramConfig) -> u64 {
        assert_eq!(self, AddressMapping::GradPim, "bank regions only exist under GradPim mapping");
        self.capacity_bytes(cfg) / cfg.banks_per_group as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    #[test]
    fn round_trip_both_mappings() {
        let cfg = cfg();
        for mapping in [AddressMapping::GradPim, AddressMapping::RowInterleaved] {
            for addr in [0u64, 64, 4096, 1 << 20, (1 << 30) + 8192, (1 << 33) - 64] {
                let loc = mapping.decode(addr, &cfg);
                assert_eq!(mapping.encode(loc, &cfg), addr, "{mapping:?} addr={addr:#x}");
            }
        }
    }

    #[test]
    fn gradpim_consecutive_bursts_walk_columns_then_bankgroups() {
        let cfg = cfg();
        let m = AddressMapping::GradPim;
        let a0 = m.decode(0, &cfg);
        let a1 = m.decode(64, &cfg);
        assert_eq!(a1.column, a0.column + 1);
        assert_eq!(a1.bankgroup, a0.bankgroup);
        // After one full row worth of columns, the bank group advances.
        let row_bytes = (cfg.columns * cfg.burst_bytes) as u64;
        let b = m.decode(row_bytes, &cfg);
        assert_eq!(b.bankgroup, 1);
        assert_eq!(b.column, 0);
        assert_eq!(b.bank, a0.bank);
    }

    #[test]
    fn gradpim_bank_bits_are_msb() {
        let cfg = cfg();
        let m = AddressMapping::GradPim;
        let region = m.bank_region_bytes(&cfg);
        for bank in 0..cfg.banks_per_group {
            let loc = m.decode(region * bank as u64, &cfg);
            assert_eq!(loc.bank, bank);
            assert_eq!(loc.row, 0);
            assert_eq!(loc.bankgroup, 0);
        }
    }

    #[test]
    fn gradpim_alignment_keeps_arrays_in_same_bankgroup_different_bank() {
        // §V-B: two arrays at the same offset within different bank regions
        // always land in the same bank group, same row index, different
        // bank — the criterion the update kernels rely on.
        let cfg = cfg();
        let m = AddressMapping::GradPim;
        let region = m.bank_region_bytes(&cfg);
        for off in [0u64, 64, 8192, 1 << 22] {
            let theta = m.decode(off, &cfg);
            let vel = m.decode(region + off, &cfg);
            assert_eq!(theta.bankgroup, vel.bankgroup);
            assert_eq!(theta.rank, vel.rank);
            assert_eq!(theta.row, vel.row);
            assert_eq!(theta.column, vel.column);
            assert_ne!(theta.bank, vel.bank);
        }
    }

    #[test]
    fn row_interleaved_breaks_bank_separation() {
        // The conventional mapping puts large-stride offsets into the same
        // bank at a different row — the bank-conflict case.
        let cfg = cfg();
        let m = AddressMapping::RowInterleaved;
        // Two arrays 1/4-capacity apart:
        let quarter = m.capacity_bytes(&cfg) / 4;
        let a = m.decode(0, &cfg);
        let b = m.decode(quarter, &cfg);
        // Same bank & bank group, different row → conflict on concurrent use.
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.bankgroup, b.bankgroup);
        assert_ne!(a.row, b.row);
    }

    #[test]
    fn flat_indices_are_dense_and_unique() {
        let cfg = cfg();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..cfg.ranks {
            for bg in 0..cfg.bankgroups {
                for bank in 0..cfg.banks_per_group {
                    let a = Address { rank, bankgroup: bg, bank, ..Default::default() };
                    assert!(seen.insert(a.flat_bank(&cfg)));
                }
            }
        }
        assert_eq!(seen.len(), cfg.ranks * cfg.banks_per_rank());
        assert_eq!(*seen.iter().max().unwrap(), cfg.ranks * cfg.banks_per_rank() - 1);
    }

    #[test]
    fn capacity_matches_organization() {
        let cfg = cfg();
        let m = AddressMapping::GradPim;
        // 4 ranks × 16 banks × 65536 rows × 128 cols × 64 B = 32 GiB.
        assert_eq!(m.capacity_bytes(&cfg), 32 << 30);
    }
}
