//! A cycle-level DDR4 DRAM simulator with the GradPIM protocol extension.
//!
//! This crate is the substrate the paper built on DRAMsim3 (§VI-A),
//! reimplemented from scratch in Rust:
//!
//! * **Organization** — channels → ranks → bank groups → banks, with the
//!   Table II DDR4-2133 preset (plus DDR4-3200 and an HBM2-like point for
//!   the Fig. 12a sweep).
//! * **Timing** — a DRAMsim3-style constraint engine covering
//!   tRCD/tRP/tRAS/tRC, tCCD_L/S, tRRD_L/S + tFAW, tWR/tWTR/tRTP, data-bus
//!   occupancy with rank switching, tREFI/tRFC refresh, and the paper's PIM
//!   rules (§IV-C): scaled reads/writebacks pace the bank-group I/O at
//!   tCCD_L without touching the external bus, and parallel ALU ops occupy
//!   a unit for `tPIM`.
//! * **Controller** — FR-FCFS open-page scheduling with in-order per-unit
//!   PIM streams, direct-attach or per-rank-buffered command issue
//!   (Fig. 8), shared or per-rank data buses (for TensorDIMM-style
//!   baselines).
//! * **Energy** — Micron power-calculator formulas over Table II currents,
//!   IDDpre-based internal transfers, and the Table III PIM-unit layout
//!   numbers.
//! * **Function** — optional byte-level storage and live PIM register
//!   files, so kernels *compute* while they are being timed.
//! * **Speed** — an event-driven fast-forward core:
//!   [`Controller::next_event_cycle`] computes the earliest cycle anything
//!   observable can change (timing-constraint expiry, refresh due,
//!   power-down wake, in-flight retire) and
//!   [`Controller::advance_to`]/[`MemorySystem::tick_until_event`] skip
//!   there in bulk, bit-identical to per-cycle stepping
//!   ([`MemorySystem::drain_reference`] keeps the reference path for
//!   differential testing).
//!
//! # Example
//!
//! ```
//! use gradpim_dram::{AddressMapping, DramConfig, MemorySystem, PimOp};
//!
//! let mut mem = MemorySystem::with_storage(DramConfig::ddr4_2133(), AddressMapping::GradPim);
//! // Put 16 f32 values into bank 0 of bank group 0 and scale them in-DRAM.
//! let bytes: Vec<u8> = (0..16).flat_map(|i| (i as f32).to_le_bytes()).collect();
//! mem.poke(0, &bytes);
//! mem.enqueue_pim(0, 0, 0, PimOp::ScaledRead { bank: 0, row: 0, col: 0, scaler: 0, dst: 0 })?;
//! mem.enqueue_pim(0, 0, 0, PimOp::Writeback { bank: 1, row: 0, col: 0, src: 0 })?;
//! mem.drain(10_000)?;
//! # Ok::<(), gradpim_dram::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod bank;
pub mod command;
pub mod config;
pub mod controller;
pub mod pim;
pub mod power;
pub mod stats;
pub mod storage;
pub mod system;
pub mod timing;
pub mod trace;

pub use address::{Address, AddressMapping};
pub use command::{BankAddr, Command, CommandKind, PimOp};
pub use config::{CommandIssueMode, DataBusScope, DramConfig, PimPlacement};
pub use controller::{Completion, Controller, EnqueueError};
pub use pim::{ElemKind, ModeRegisters, PimUnit};
pub use power::{PimLayout, PowerModel, DDR4_8GB_DIE_MM2};
pub use stats::{EnergyBreakdown, Stats};
pub use storage::Storage;
pub use system::{MemError, MemorySystem};
pub use trace::{verify_trace, ProtocolViolation, TraceEntry};
