//! Energy model: Micron power-calculator formulas over the Table II IDD
//! values, plus the Table III GradPIM-unit layout numbers.
//!
//! All per-event energies are in picojoules. The formulas follow the Micron
//! DDR4 system-power calculator (the paper's §VI-A reference) as implemented
//! by DRAMsim3:
//!
//! * one ACT/PRE pair: `(IDD0·tRC − (IDD3N·tRAS + IDD2N·(tRC−tRAS)))·tCK·VDD`
//! * one read burst: `(IDD4R − IDD3N)·tBURST·tCK·VDD` (+ I/O energy)
//! * one write burst: `(IDD4W − IDD3N)·tBURST·tCK·VDD` (+ I/O energy)
//! * one PIM-internal column transfer: `(IDDpre − IDD3N)·tBURST·tCK·VDD`,
//!   following the partial-activation model of O'Connor et al. that the
//!   paper cites for IDDpre
//! * background: `IDD3N·tCK·VDD` (any row open) or `IDD2N·tCK·VDD`
//!   (all precharged) per rank-cycle.

use crate::config::DramConfig;

/// Per-event energies derived from a [`DramConfig`] (all pJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// One ACT+PRE pair.
    pub act_pre_pj: f64,
    /// One external read burst (array energy, excluding I/O).
    pub rd_pj: f64,
    /// One external write burst (array energy, excluding I/O).
    pub wr_pj: f64,
    /// One bank-group-internal column transfer (scaled read, writeback,
    /// q-reg load/store).
    pub pim_xfer_pj: f64,
    /// Off-chip I/O + termination for one external burst.
    pub io_pj: f64,
    /// One all-bank refresh.
    pub refresh_pj: f64,
    /// Background, one rank-cycle with at least one open row.
    pub bg_active_pj: f64,
    /// Background, one rank-cycle fully precharged.
    pub bg_precharged_pj: f64,
    /// Background, one rank-cycle in precharge power-down (IDD2P).
    pub bg_powerdown_pj: f64,
    /// One GradPIM ALU operation (Table III logic power × tPIM).
    pub pim_alu_pj: f64,
    /// One pass through the scaler (applies to scaled reads).
    pub scaler_pj: f64,
}

impl PowerModel {
    /// Builds the per-event energy table for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        let tck = cfg.tck_ps as f64 / 1000.0; // ns
        let v = cfg.vdd;
        let act_pre_pj = (cfg.idd0 * cfg.trc as f64
            - (cfg.idd3n * cfg.tras as f64 + cfg.idd2n * (cfg.trc - cfg.tras) as f64))
            * tck
            * v;
        let rd_pj = (cfg.idd4r - cfg.idd3n) * cfg.tburst as f64 * tck * v;
        let wr_pj = (cfg.idd4w - cfg.idd3n) * cfg.tburst as f64 * tck * v;
        let pim_xfer_pj = (cfg.iddpre - cfg.idd3n) * cfg.tburst as f64 * tck * v;
        let io_pj = cfg.io_pj_per_bit * cfg.burst_bytes as f64 * 8.0;
        // Table II lacks IDD5; model an all-bank refresh as one ACT/PRE pair
        // per bank of the rank, the canonical approximation.
        let refresh_pj = act_pre_pj * cfg.banks_per_rank() as f64;
        let bg_active_pj = cfg.idd3n * tck * v;
        let bg_precharged_pj = cfg.idd2n * tck * v;
        let bg_powerdown_pj = cfg.idd2p * tck * v;
        let layout = PimLayout::paper();
        let tpim_ns = cfg.tpim as f64 * tck;
        let pim_alu_pj = layout.adder_power_mw * tpim_ns;
        let scaler_pj = layout.scaler_power_mw * tpim_ns;
        Self {
            act_pre_pj,
            rd_pj,
            wr_pj,
            pim_xfer_pj,
            io_pj,
            refresh_pj,
            bg_active_pj,
            bg_precharged_pj,
            bg_powerdown_pj,
            pim_alu_pj,
            scaler_pj,
        }
    }

    /// Total background energy (pJ) for the given rank-cycle counts in each
    /// background state.
    ///
    /// Computed as a product over totals rather than accumulated per cycle,
    /// so per-cycle stepping and event-driven bulk accounting produce
    /// bit-identical energies (see `gradpim_dram::controller`).
    pub fn background_total_pj(&self, active: u64, precharged: u64, powerdown: u64) -> f64 {
        active as f64 * self.bg_active_pj
            + precharged as f64 * self.bg_precharged_pj
            + powerdown as f64 * self.bg_powerdown_pj
    }
}

/// The Table III layout results: a GradPIM unit synthesized at 45 nm under
/// DRAM-process constraints (3 metal layers, 70 % utilization) and scaled to
/// 32 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimLayout {
    /// Adder area (µm²).
    pub adder_um2: f64,
    /// Adder power (mW).
    pub adder_power_mw: f64,
    /// Quantize-unit area (µm²).
    pub quantize_um2: f64,
    /// Quantize-unit power (mW).
    pub quantize_power_mw: f64,
    /// Dequantize-unit area (µm²).
    pub dequantize_um2: f64,
    /// Dequantize-unit power (mW).
    pub dequantize_power_mw: f64,
    /// Scaler area (µm²).
    pub scaler_um2: f64,
    /// Scaler power (mW).
    pub scaler_power_mw: f64,
    /// Area of one register (µm²); each unit has three (two temporary + one
    /// quantization).
    pub register_um2: f64,
    /// Power of one register (mW).
    pub register_power_mw: f64,
    /// Number of GradPIM units per device (one per bank group).
    pub units: usize,
}

impl PimLayout {
    /// The exact Table III values.
    pub fn paper() -> Self {
        Self {
            adder_um2: 320.1,
            adder_power_mw: 0.058,
            quantize_um2: 275.4,
            quantize_power_mw: 0.056,
            dequantize_um2: 244.8,
            dequantize_power_mw: 0.041,
            scaler_um2: 606.1,
            scaler_power_mw: 0.159,
            register_um2: 206.7,
            register_power_mw: 0.04,
            units: 4,
        }
    }

    /// Area of one GradPIM unit (µm²): all modules plus three registers.
    pub fn unit_area_um2(&self) -> f64 {
        self.adder_um2
            + self.quantize_um2
            + self.dequantize_um2
            + self.scaler_um2
            + 3.0 * self.register_um2
    }

    /// Total area of all units in one device (µm²). Table III reports
    /// 8267.8 µm² for four units.
    pub fn total_area_um2(&self) -> f64 {
        self.unit_area_um2() * self.units as f64
    }

    /// Power of one unit when fully active (mW).
    pub fn unit_power_mw(&self) -> f64 {
        self.adder_power_mw
            + self.quantize_power_mw
            + self.dequantize_power_mw
            + self.scaler_power_mw
            + 3.0 * self.register_power_mw
    }

    /// Total power of all units (mW). Table III reports 1.74 mW.
    pub fn total_power_mw(&self) -> f64 {
        self.unit_power_mw() * self.units as f64
    }

    /// Area overhead relative to an 8 Gb DDR4 die (§VI-A reports 0.01 %,
    /// "approximately the size of a 1 Mb DRAM cell [array]").
    pub fn area_overhead(&self, die_area_mm2: f64) -> f64 {
        self.total_area_um2() / (die_area_mm2 * 1e6)
    }
}

/// Typical die area of an x8 8 Gb DDR4 device (mm²) used for the overhead
/// check.
pub const DDR4_8GB_DIE_MM2: f64 = 68.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_totals_reproduce() {
        let l = PimLayout::paper();
        // Table III: total 8267.8 µm², 1.74 mW (4 units × modules + 3 regs).
        assert!((l.total_area_um2() - 8267.8).abs() < 10.0, "{}", l.total_area_um2());
        assert!((l.total_power_mw() - 1.74).abs() < 0.01, "{}", l.total_power_mw());
    }

    #[test]
    fn area_overhead_is_about_a_hundredth_percent() {
        // §VI-A: "GradPIM only incurs 0.01% area overhead to the DRAM".
        let l = PimLayout::paper();
        let overhead = l.area_overhead(DDR4_8GB_DIE_MM2);
        assert!(overhead < 2e-4, "overhead {overhead}");
        assert!(overhead > 0.5e-4, "overhead {overhead}");
    }

    #[test]
    fn internal_transfer_cheaper_than_external_read() {
        let pm = PowerModel::new(&DramConfig::ddr4_2133());
        assert!(pm.pim_xfer_pj < pm.rd_pj);
        // IDDpre model: internal ≈ 30 % of an external array read.
        let ratio = pm.pim_xfer_pj / pm.rd_pj;
        assert!(ratio > 0.2 && ratio < 0.4, "ratio {ratio}");
        // And external transfers additionally pay I/O energy.
        assert!(pm.io_pj > 0.0);
    }

    #[test]
    fn pim_logic_energy_is_negligible() {
        // Fig. 10: the PIM slice is nearly invisible; logic energy per op
        // must be well under 1 % of a row activation.
        let pm = PowerModel::new(&DramConfig::ddr4_2133());
        assert!(pm.pim_alu_pj < pm.act_pre_pj * 0.01);
    }

    #[test]
    fn energies_positive_for_all_presets() {
        for cfg in [DramConfig::ddr4_2133(), DramConfig::ddr4_3200(), DramConfig::hbm2_like()] {
            let pm = PowerModel::new(&cfg);
            assert!(pm.act_pre_pj > 0.0, "{}", cfg.name);
            assert!(pm.rd_pj > 0.0);
            assert!(pm.wr_pj > 0.0);
            assert!(pm.pim_xfer_pj > 0.0);
            assert!(pm.bg_active_pj > pm.bg_precharged_pj);
            assert!(pm.bg_precharged_pj > pm.bg_powerdown_pj);
        }
    }
}
