//! Per-bank row state.

/// The row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankState {
    open_row: Option<u32>,
}

impl BankState {
    /// A freshly precharged bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// True if `row` is open in this bank (a row-buffer hit).
    pub fn is_hit(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }

    /// Records an activate.
    ///
    /// # Panics
    ///
    /// Panics if a row is already open (the controller must precharge
    /// first); this catches controller scheduling bugs in tests.
    pub fn activate(&mut self, row: u32) {
        assert!(self.open_row.is_none(), "activate while row {:?} open", self.open_row);
        self.open_row = Some(row);
    }

    /// Records a precharge (idempotent, as PREA hits closed banks too).
    pub fn precharge(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_cycle() {
        let mut b = BankState::new();
        assert_eq!(b.open_row(), None);
        b.activate(42);
        assert!(b.is_hit(42));
        assert!(!b.is_hit(7));
        b.precharge();
        assert_eq!(b.open_row(), None);
        b.precharge(); // idempotent
    }

    #[test]
    #[should_panic(expected = "activate while row")]
    fn double_activate_panics() {
        let mut b = BankState::new();
        b.activate(1);
        b.activate(2);
    }
}
