//! The per-channel memory controller.
//!
//! A conventional FR-FCFS open-page controller (per-bank transaction queues,
//! row-hit-first scheduling with a starvation cap, tREFI/tRFC refresh,
//! write/read turnaround via the timing engine) extended with per-unit
//! GradPIM queues. PIM command streams execute *in order per unit* — the
//! fixed-function, deterministic-latency model requirement #1 of the paper —
//! while still being interleaved with ordinary traffic on the shared command
//! bus.
//!
//! In `CommandIssueMode::Direct` the controller issues at most one command
//! per tCK for the whole channel (the Fig. 11 bottleneck). In
//! `PerRankBuffered` each rank's buffer device issues up to one command per
//! tCK (Fig. 8(b)).

use std::collections::VecDeque;

use crate::address::Address;
use crate::bank::BankState;
use crate::command::{BankAddr, Command, CommandKind, PimOp};
use crate::config::{CommandIssueMode, DramConfig, PimPlacement};
use crate::pim::{ModeRegisters, PimUnit};
use crate::power::PowerModel;
use crate::stats::Stats;
use crate::storage::Storage;
use crate::timing::TimingState;
use crate::trace::TraceEntry;

/// A retired transaction: its id, retire cycle, and (for functional reads)
/// the data.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Transaction id assigned at enqueue.
    pub id: u64,
    /// Memory-clock cycle at which the transaction's effect is complete.
    pub at_cycle: u64,
    /// Burst data for functional reads.
    pub data: Option<Vec<u8>>,
}

/// Why a transaction could not be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target queue is at capacity; tick and retry.
    QueueFull,
    /// The op needs the §VIII extended ALU but `DramConfig::extended_alu`
    /// is off.
    ExtendedAluDisabled,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::QueueFull => write!(f, "transaction queue full"),
            EnqueueError::ExtendedAluDisabled => {
                write!(f, "extended-ALU op on a device without extended_alu")
            }
        }
    }
}

impl std::error::Error for EnqueueError {}

#[derive(Debug)]
struct ColReq {
    id: u64,
    row: u32,
    col: u32,
    write: bool,
    data: Option<Vec<u8>>,
}

#[derive(Debug)]
struct PimReq {
    id: u64,
    op: PimOp,
}

/// Per-rank power-down state (JEDEC precharge power-down with tXP exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PdState {
    /// Commands may issue.
    Active,
    /// Clocks gated; background drops to IDD2P.
    Down,
    /// Exiting power-down; active at the stored cycle.
    Waking(u64),
}

/// Maximum queue entries inspected for row hits before falling back to the
/// queue head (FR-FCFS window).
const HIT_WINDOW: usize = 8;
/// Consecutive row hits served before the head is prioritized (starvation
/// cap).
const MAX_STREAK: u32 = 16;

/// One channel's memory controller, DRAM timing state, and (optionally)
/// functional storage + PIM register files.
#[derive(Debug)]
pub struct Controller {
    cfg: DramConfig,
    clock: u64,
    timing: TimingState,
    banks: Vec<BankState>,
    bank_q: Vec<VecDeque<ColReq>>,
    hit_streak: Vec<u32>,
    pim_q: Vec<VecDeque<PimReq>>,
    refresh_due: Vec<u64>,
    refresh_pending: Vec<bool>,
    rr_bank: usize,
    rr_unit: usize,
    pending: usize,
    last_done: u64,
    power: PowerModel,
    stats: Stats,
    storage: Option<Storage>,
    units: Vec<PimUnit>,
    mode: ModeRegisters,
    completions: Vec<Completion>,
    trace: Option<Vec<TraceEntry>>,
    pd: Vec<PdState>,
    idle: Vec<u64>,
}

impl Controller {
    /// Creates a controller; `functional` enables byte-level storage and PIM
    /// register execution.
    pub fn new(cfg: &DramConfig, functional: bool) -> Self {
        let nbanks = cfg.ranks * cfg.banks_per_rank();
        let nunits = match cfg.pim_placement {
            PimPlacement::PerBankGroup => cfg.ranks * cfg.bankgroups,
            PimPlacement::PerBank => nbanks,
        };
        Self {
            cfg: cfg.clone(),
            clock: 0,
            timing: TimingState::new(cfg),
            banks: vec![BankState::new(); nbanks],
            bank_q: (0..nbanks).map(|_| VecDeque::new()).collect(),
            hit_streak: vec![0; nbanks],
            pim_q: (0..cfg.ranks * cfg.bankgroups).map(|_| VecDeque::new()).collect(),
            refresh_due: (0..cfg.ranks).map(|r| cfg.trefi + r as u64 * 32).collect(),
            refresh_pending: vec![false; cfg.ranks],
            rr_bank: 0,
            rr_unit: 0,
            pending: 0,
            last_done: 0,
            power: PowerModel::new(cfg),
            stats: Stats::default(),
            storage: functional.then(|| Storage::new(cfg.columns, cfg.burst_bytes)),
            units: (0..nunits).map(|_| PimUnit::new(cfg.burst_bytes)).collect(),
            mode: ModeRegisters::default(),
            completions: Vec::new(),
            trace: None,
            pd: vec![PdState::Active; cfg.ranks],
            idle: vec![0; cfg.ranks],
        }
    }

    /// Starts recording every issued command (for
    /// [`crate::trace::verify_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace
            .take()
            .inspect(|_| {
                self.trace = Some(Vec::new());
            })
            .unwrap_or_default()
    }

    /// Current memory-clock cycle.
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Transactions accepted but not yet retired.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when all queues are empty and all in-flight bursts have landed.
    pub fn is_drained(&self) -> bool {
        self.pending == 0 && self.clock >= self.last_done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Programs the unit mode registers (MRW).
    pub fn set_mode(&mut self, mode: ModeRegisters) {
        self.mode = mode;
    }

    /// The current mode registers.
    pub fn mode(&self) -> &ModeRegisters {
        &self.mode
    }

    /// Functional storage backdoor (None in performance-only mode).
    pub fn storage(&self) -> Option<&Storage> {
        self.storage.as_ref()
    }

    /// Mutable functional storage backdoor.
    pub fn storage_mut(&mut self) -> Option<&mut Storage> {
        self.storage.as_mut()
    }

    /// Drains retired transactions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    fn flat_bank(&self, b: BankAddr) -> usize {
        (b.rank as usize * self.cfg.bankgroups + b.bankgroup as usize) * self.cfg.banks_per_group
            + b.bank as usize
    }

    fn flat_unit(&self, rank: u8, bankgroup: u8, bank: u8) -> usize {
        match self.cfg.pim_placement {
            PimPlacement::PerBankGroup => rank as usize * self.cfg.bankgroups + bankgroup as usize,
            PimPlacement::PerBank => {
                (rank as usize * self.cfg.bankgroups + bankgroup as usize)
                    * self.cfg.banks_per_group
                    + bank as usize
            }
        }
    }

    /// Enqueues an external read for `addr` (within this channel).
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] if the bank queue is at capacity.
    pub fn enqueue_read(&mut self, id: u64, addr: Address) -> Result<(), EnqueueError> {
        let fb = addr.flat_bank(&self.cfg);
        if self.bank_q[fb].len() >= self.cfg.queue_depth {
            return Err(EnqueueError::QueueFull);
        }
        self.bank_q[fb].push_back(ColReq {
            id,
            row: addr.row as u32,
            col: addr.column as u32,
            write: false,
            data: None,
        });
        self.pending += 1;
        Ok(())
    }

    /// Enqueues an external write for `addr`, optionally carrying burst data
    /// for functional mode.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] if the bank queue is at capacity.
    pub fn enqueue_write(
        &mut self,
        id: u64,
        addr: Address,
        data: Option<Vec<u8>>,
    ) -> Result<(), EnqueueError> {
        let fb = addr.flat_bank(&self.cfg);
        if self.bank_q[fb].len() >= self.cfg.queue_depth {
            return Err(EnqueueError::QueueFull);
        }
        self.bank_q[fb].push_back(ColReq {
            id,
            row: addr.row as u32,
            col: addr.column as u32,
            write: true,
            data,
        });
        self.pending += 1;
        Ok(())
    }

    /// Enqueues one GradPIM micro-op for the unit at (`rank`, `bankgroup`).
    /// Ops execute in order per bank group.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] if the PIM queue is at capacity.
    pub fn enqueue_pim(
        &mut self,
        id: u64,
        rank: u8,
        bankgroup: u8,
        op: PimOp,
    ) -> Result<(), EnqueueError> {
        if op.kind().is_extended() && !self.cfg.extended_alu {
            return Err(EnqueueError::ExtendedAluDisabled);
        }
        let q = rank as usize * self.cfg.bankgroups + bankgroup as usize;
        if self.pim_q[q].len() >= self.cfg.queue_depth * 4 {
            return Err(EnqueueError::QueueFull);
        }
        self.pim_q[q].push_back(PimReq { id, op });
        self.pending += 1;
        Ok(())
    }

    /// True when rank `r` has queued or in-progress work: pending bank/PIM
    /// requests or an open row. Deliberately excludes refresh —
    /// [`Controller::rank_has_work`] adds that term.
    fn rank_has_queued_work(&self, r: usize) -> bool {
        let bank_base = r * self.cfg.banks_per_rank();
        let busy_banks = (0..self.cfg.banks_per_rank()).any(|b| {
            !self.bank_q[bank_base + b].is_empty() || self.banks[bank_base + b].open_row().is_some()
        });
        if busy_banks {
            return true;
        }
        let unit_base = r * self.cfg.bankgroups;
        (0..self.cfg.bankgroups).any(|g| !self.pim_q[unit_base + g].is_empty())
    }

    /// Queued work *or* a due refresh. The refresh term is what forces a
    /// powered-down rank to wake (via [`Controller::update_powerdown`]) so
    /// REF can never be postponed past the JEDEC 9×tREFI bound by precharge
    /// power-down.
    fn rank_has_work(&self, r: usize) -> bool {
        self.refresh_pending[r] || self.rank_has_queued_work(r)
    }

    /// Power-down bookkeeping for one rank (JEDEC precharge power-down:
    /// enter after `powerdown_idle` idle cycles, exit over tXP).
    fn update_powerdown(&mut self, r: usize) {
        match self.pd[r] {
            PdState::Active => {
                if self.rank_has_work(r) {
                    self.idle[r] = 0;
                } else {
                    self.idle[r] += 1;
                    if self.idle[r] >= self.cfg.powerdown_idle {
                        self.pd[r] = PdState::Down;
                    }
                }
            }
            PdState::Down => {
                if self.rank_has_work(r) {
                    self.pd[r] = PdState::Waking(self.clock + self.cfg.txp);
                }
            }
            PdState::Waking(until) => {
                if self.clock >= until {
                    self.pd[r] = PdState::Active;
                    self.idle[r] = 0;
                }
            }
        }
    }

    fn rank_issuable(&self, r: usize) -> bool {
        self.pd[r] == PdState::Active
    }

    /// Advances one memory-clock cycle: refresh bookkeeping, power-down
    /// transitions, command issue, background energy.
    pub fn tick(&mut self) {
        for r in 0..self.cfg.ranks {
            if self.clock >= self.refresh_due[r] {
                self.refresh_pending[r] = true;
            }
            self.update_powerdown(r);
        }
        match self.cfg.issue_mode {
            CommandIssueMode::Direct => {
                self.try_issue(None);
            }
            CommandIssueMode::PerRankBuffered => {
                for r in 0..self.cfg.ranks {
                    self.try_issue(Some(r as u8));
                }
            }
        }
        self.account_cycles(1);
        self.clock += 1;
        self.stats.cycles = self.clock;
    }

    /// Accounts `n` cycles of per-rank background state (energy counters and
    /// power-down cycles), assuming every rank's power-down state and
    /// open-row set are constant over those cycles.
    ///
    /// Background energy is recomputed from the integer counters rather than
    /// accumulated per call, so one `account_cycles(n)` is bit-identical to
    /// `n` calls of `account_cycles(1)`.
    fn account_cycles(&mut self, n: u64) {
        for r in 0..self.cfg.ranks {
            if self.pd[r] == PdState::Down {
                self.stats.powerdown_cycles += n;
                continue;
            }
            let base = r * self.cfg.banks_per_rank();
            let any_open =
                (0..self.cfg.banks_per_rank()).any(|b| self.banks[base + b].open_row().is_some());
            if any_open {
                self.stats.bg_active_cycles += n;
            } else {
                self.stats.bg_precharged_cycles += n;
            }
        }
        self.stats.energy.background_pj = self.power.background_total_pj(
            self.stats.bg_active_cycles,
            self.stats.bg_precharged_cycles,
            self.stats.powerdown_cycles,
        );
    }

    /// The earliest cycle at or after the current one at which anything
    /// observable can change: a command may become issuable, a refresh comes
    /// due, a power-down transition fires, or the last in-flight burst
    /// lands. Every cycle strictly between the current cycle and the
    /// returned one is provably a no-op tick, so
    /// [`Controller::advance_to`] may skip there in bulk.
    pub fn next_event_cycle(&self) -> u64 {
        let mut e = u64::MAX;
        // Drain horizon: the last in-flight burst/op retires.
        if self.clock < self.last_done {
            e = self.last_done;
        }
        for r in 0..self.cfg.ranks {
            // Refresh becoming due flips `refresh_pending`, which gates new
            // activates and wakes powered-down ranks.
            if !self.refresh_pending[r] {
                e = e.min(self.refresh_due[r]);
            }
            match self.pd[r] {
                PdState::Waking(until) => e = e.min(until),
                // A powered-down rank only changes state when work (or a
                // due refresh) appears; if it already has work, the wake
                // transition fires on the very next tick.
                PdState::Down => {
                    if self.rank_has_work(r) {
                        e = e.min(self.clock);
                    }
                }
                PdState::Active => {
                    if self.cfg.powerdown_idle != u64::MAX && !self.rank_has_work(r) {
                        // The tick at which `idle` reaches `powerdown_idle`
                        // accounts this rank as powered down.
                        let j = self.cfg.powerdown_idle.saturating_sub(self.idle[r] + 1);
                        e = e.min(self.clock.saturating_add(j));
                    }
                }
            }
        }
        e.min(self.earliest_issue()).max(self.clock)
    }

    /// The earliest cycle at which the scheduler could issue any command,
    /// given current queue/bank/refresh state (a pure query; `u64::MAX` when
    /// nothing is schedulable). Built from the *same* candidate-selection
    /// helpers `try_refresh`/`try_pim`/`try_banks` issue from, so the
    /// scheduling policy cannot diverge from the event estimate: between
    /// now and the returned cycle, every `tick` provably issues nothing.
    fn earliest_issue(&self) -> u64 {
        let mut e = u64::MAX;
        for r in 0..self.cfg.ranks {
            if !self.refresh_pending[r] || !self.rank_issuable(r) {
                continue;
            }
            for cmd in self.refresh_candidates(r) {
                e = e.min(self.timing.earliest(&cmd));
            }
        }
        for u in 0..self.pim_q.len() {
            if !self.rank_issuable(u / self.cfg.bankgroups) {
                continue;
            }
            if let Some((cmd, _)) = self.pim_candidate(u) {
                e = e.min(self.timing.earliest(&cmd));
            }
        }
        for fb in 0..self.banks.len() {
            if !self.rank_issuable(fb / self.cfg.banks_per_rank()) {
                continue;
            }
            if let Some((cmd, _)) = self.bank_candidate(fb) {
                e = e.min(self.timing.earliest(&cmd));
            }
        }
        e
    }

    /// The refresh-path candidates for rank `r` (caller checks
    /// `refresh_pending` and issuability): the REF itself when every bank
    /// is closed, otherwise one Precharge per open bank, in bank order.
    fn refresh_candidates(&self, r: usize) -> impl Iterator<Item = Command> + '_ {
        let base = r * self.cfg.banks_per_rank();
        let all_closed =
            (0..self.cfg.banks_per_rank()).all(move |b| self.banks[base + b].open_row().is_none());
        let refresh = all_closed.then_some(Command::Refresh { rank: r as u8 });
        let precharges = (0..self.cfg.banks_per_rank())
            .filter(move |&b| !all_closed && self.banks[base + b].open_row().is_some())
            .map(move |b| Command::Precharge {
                bank: BankAddr {
                    rank: r as u8,
                    bankgroup: (b / self.cfg.banks_per_group) as u8,
                    bank: (b % self.cfg.banks_per_group) as u8,
                },
            });
        refresh.into_iter().chain(precharges)
    }

    /// The command the scheduler would attempt next for PIM unit `u`
    /// (None when the queue is empty or activates are refresh-gated), and
    /// whether issuing it retires the head op.
    fn pim_candidate(&self, u: usize) -> Option<(Command, bool)> {
        let req = self.pim_q[u].front()?;
        let rank = (u / self.cfg.bankgroups) as u8;
        let bankgroup = (u % self.cfg.bankgroups) as u8;
        let op = req.op;
        if let Some((bank, row)) = op.row_target() {
            let addr = BankAddr { rank, bankgroup, bank };
            match self.banks[self.flat_bank(addr)].open_row() {
                None => {
                    if self.refresh_pending[rank as usize] {
                        return None;
                    }
                    Some((Command::Activate { bank: addr, row }, false))
                }
                Some(open) if open != row => Some((Command::Precharge { bank: addr }, false)),
                Some(_) => Some((op.to_command(rank, bankgroup), true)),
            }
        } else {
            Some((op.to_command(rank, bankgroup), true))
        }
    }

    /// The FR-FCFS command the scheduler would attempt next for flat bank
    /// `fb`'s transaction queue (None when the queue is empty or activates
    /// are refresh-gated), and the queue position served for column
    /// commands.
    fn bank_candidate(&self, fb: usize) -> Option<(Command, Option<usize>)> {
        if self.bank_q[fb].is_empty() {
            return None;
        }
        let rank = fb / self.cfg.banks_per_rank();
        let within = fb % self.cfg.banks_per_rank();
        let addr = BankAddr {
            rank: rank as u8,
            bankgroup: (within / self.cfg.banks_per_group) as u8,
            bank: (within % self.cfg.banks_per_group) as u8,
        };
        match self.banks[fb].open_row() {
            None => {
                if self.refresh_pending[rank] {
                    return None;
                }
                let row = self.bank_q[fb].front().expect("non-empty").row;
                Some((Command::Activate { bank: addr, row }, None))
            }
            Some(open) => {
                // FR-FCFS: serve a row hit from the window unless the
                // streak cap forces head progress.
                let hit = if self.hit_streak[fb] < MAX_STREAK {
                    self.bank_q[fb].iter().take(HIT_WINDOW).position(|r| r.row == open)
                } else {
                    // only the head counts once the cap is hit
                    self.bank_q[fb].front().and_then(|r| (r.row == open).then_some(0))
                };
                match hit {
                    Some(pos) => {
                        let req = &self.bank_q[fb][pos];
                        let cmd = if req.write {
                            Command::Write { bank: addr, row: open, col: req.col }
                        } else {
                            Command::Read { bank: addr, row: open, col: req.col }
                        };
                        Some((cmd, Some(pos)))
                    }
                    None => Some((Command::Precharge { bank: addr }, None)),
                }
            }
        }
    }

    /// Runs to exactly `cycle` (no overshoot), fast-forwarding over dead
    /// spans and ticking at events — observably identical to calling
    /// [`Controller::tick`] once per cycle until `cycle` is reached.
    pub fn run_until(&mut self, cycle: u64) {
        while self.clock < cycle {
            self.advance_to(self.next_event_cycle().min(cycle));
            if self.clock < cycle {
                self.tick();
            }
        }
    }

    /// Fast-forwards to `cycle` without attempting command issue, accounting
    /// the skipped cycles in bulk (background energy, power-down residency,
    /// idle counters). No-op when `cycle` is not in the future.
    ///
    /// Correct only up to [`Controller::next_event_cycle`]: past it a
    /// command could have issued or a state transition fired, which bulk
    /// accounting would miss (debug-asserted).
    pub fn advance_to(&mut self, cycle: u64) {
        let Some(n) = cycle.checked_sub(self.clock) else { return };
        if n == 0 {
            return;
        }
        debug_assert!(
            cycle <= self.next_event_cycle(),
            "advance_to({cycle}) past the next event at {}",
            self.next_event_cycle()
        );
        // Idle counters evolve exactly as `n` ticks would evolve them: reset
        // every cycle while the rank has work, otherwise count up (the
        // Active→Down transition itself is an event, so it cannot occur
        // inside the skipped span).
        for r in 0..self.cfg.ranks {
            if self.pd[r] == PdState::Active {
                if self.rank_has_work(r) {
                    self.idle[r] = 0;
                } else {
                    self.idle[r] = self.idle[r].saturating_add(n);
                }
            }
        }
        self.account_cycles(n);
        self.clock = cycle;
        self.stats.cycles = cycle;
    }

    fn rank_matches(filter: Option<u8>, rank: u8) -> bool {
        filter.is_none_or(|f| f == rank)
    }

    fn try_issue(&mut self, filter: Option<u8>) {
        if self.try_refresh(filter) {
            return;
        }
        if self.clock.is_multiple_of(2) {
            if self.try_pim(filter) {
                return;
            }
            let _ = self.try_banks(filter);
        } else {
            if self.try_banks(filter) {
                return;
            }
            let _ = self.try_pim(filter);
        }
    }

    fn try_refresh(&mut self, filter: Option<u8>) -> bool {
        for r in 0..self.cfg.ranks {
            if !self.refresh_pending[r]
                || !Self::rank_matches(filter, r as u8)
                || !self.rank_issuable(r)
            {
                continue;
            }
            // Issue the first candidate whose timing is satisfied (the REF
            // itself, or a precharge closing the way for it).
            let ready =
                self.refresh_candidates(r).find(|cmd| self.timing.earliest(cmd) <= self.clock);
            if let Some(cmd) = ready {
                let is_refresh = matches!(cmd, Command::Refresh { .. });
                self.issue(cmd);
                if is_refresh {
                    self.refresh_pending[r] = false;
                    self.refresh_due[r] += self.cfg.trefi;
                }
                return true;
            }
        }
        false
    }

    fn try_pim(&mut self, filter: Option<u8>) -> bool {
        let nunits = self.pim_q.len();
        for i in 0..nunits {
            let u = (self.rr_unit + i) % nunits;
            let rank = (u / self.cfg.bankgroups) as u8;
            if !Self::rank_matches(filter, rank) || !self.rank_issuable(rank as usize) {
                continue;
            }
            let Some((cmd, retires)) = self.pim_candidate(u) else { continue };
            if self.timing.earliest(&cmd) > self.clock {
                continue;
            }
            if retires {
                let req = self.pim_q[u].pop_front().expect("non-empty");
                let op = req.op;
                self.issue(cmd);
                self.retire_pim(req, op);
            } else {
                self.issue(cmd);
            }
            self.rr_unit = (u + 1) % nunits;
            return true;
        }
        false
    }

    fn retire_pim(&mut self, req: PimReq, op: PimOp) {
        let done =
            self.clock + if op.kind().is_pim_alu() { self.cfg.tpim } else { self.cfg.tccd_l };
        self.finish(req.id, done, None);
    }

    fn try_banks(&mut self, filter: Option<u8>) -> bool {
        let nbanks = self.banks.len();
        for i in 0..nbanks {
            let fb = (self.rr_bank + i) % nbanks;
            let rank = (fb / self.cfg.banks_per_rank()) as u8;
            if !Self::rank_matches(filter, rank) || !self.rank_issuable(rank as usize) {
                continue;
            }
            let Some((cmd, pos)) = self.bank_candidate(fb) else { continue };
            if self.timing.earliest(&cmd) > self.clock {
                continue;
            }
            match pos {
                Some(pos) => {
                    let req = self.bank_q[fb].remove(pos).expect("in range");
                    self.issue_col(cmd, req);
                    self.hit_streak[fb] = if pos == 0 && self.bank_q[fb].is_empty() {
                        0
                    } else {
                        self.hit_streak[fb] + 1
                    };
                }
                None => {
                    self.issue(cmd);
                    self.hit_streak[fb] = 0;
                }
            }
            self.rr_bank = (fb + 1) % nbanks;
            return true;
        }
        false
    }

    fn issue_col(&mut self, cmd: Command, req: ColReq) {
        self.issue(cmd);
        let fb = self.flat_bank(cmd.bank().expect("column command"));
        if req.write {
            if let (Some(storage), Some(data)) = (self.storage.as_mut(), req.data.as_ref()) {
                storage.write_col(fb, req.row, req.col, data);
            }
            let done = self.clock + self.cfg.tcwl + self.cfg.tburst;
            self.finish(req.id, done, None);
        } else {
            let data = self.storage.as_ref().map(|s| s.read_col(fb, req.row, req.col));
            let done = self.clock + self.cfg.tcl + self.cfg.tburst;
            self.finish(req.id, done, data);
        }
    }

    fn finish(&mut self, id: u64, done: u64, data: Option<Vec<u8>>) {
        self.pending -= 1;
        self.last_done = self.last_done.max(done);
        self.stats.completed += 1;
        self.completions.push(Completion { id, at_cycle: done, data });
    }

    /// Issues `cmd` now: timing bookkeeping, bank state, stats, energy, and
    /// functional PIM effects.
    fn issue(&mut self, cmd: Command) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { cycle: self.clock, cmd });
        }
        self.timing.issue(&cmd, self.clock);
        let kind = cmd.kind();
        self.stats.record(kind);
        match kind {
            CommandKind::Activate => {
                if let Command::Activate { bank, row } = cmd {
                    let fb = self.flat_bank(bank);
                    self.banks[fb].activate(row);
                }
                self.stats.energy.act_pj += self.power.act_pre_pj;
            }
            CommandKind::Precharge => {
                if let Command::Precharge { bank } = cmd {
                    let fb = self.flat_bank(bank);
                    self.banks[fb].precharge();
                }
            }
            CommandKind::PrechargeAll => {
                let rank = cmd.rank() as usize;
                let base = rank * self.cfg.banks_per_rank();
                for b in 0..self.cfg.banks_per_rank() {
                    self.banks[base + b].precharge();
                }
            }
            CommandKind::Read => {
                self.stats.energy.rd_pj += self.power.rd_pj;
                self.stats.energy.io_pj += self.power.io_pj;
                self.stats.external_read_bytes += self.cfg.burst_bytes as u64;
                self.stats.data_bus_busy += self.cfg.tburst;
            }
            CommandKind::Write => {
                self.stats.energy.wr_pj += self.power.wr_pj;
                self.stats.energy.io_pj += self.power.io_pj;
                self.stats.external_write_bytes += self.cfg.burst_bytes as u64;
                self.stats.data_bus_busy += self.cfg.tburst;
            }
            CommandKind::Refresh => {
                self.stats.energy.refresh_pj += self.power.refresh_pj;
            }
            CommandKind::ScaledRead | CommandKind::QRegLoad => {
                self.stats.energy.pim_pj += self.power.pim_xfer_pj;
                if kind == CommandKind::ScaledRead {
                    self.stats.energy.pim_pj += self.power.scaler_pj;
                }
                self.stats.internal_read_bytes += self.cfg.burst_bytes as u64;
                self.exec_pim(cmd);
            }
            CommandKind::Writeback | CommandKind::QRegStore => {
                self.stats.energy.pim_pj += self.power.pim_xfer_pj;
                self.stats.internal_write_bytes += self.cfg.burst_bytes as u64;
                self.exec_pim(cmd);
            }
            CommandKind::PimAdd
            | CommandKind::PimSub
            | CommandKind::Quant
            | CommandKind::Dequant
            | CommandKind::PimMul
            | CommandKind::PimRsqrt => {
                self.stats.energy.pim_pj += self.power.pim_alu_pj;
                self.exec_pim(cmd);
            }
        }
    }

    /// Executes the functional semantics of a PIM command, when storage is
    /// enabled.
    fn exec_pim(&mut self, cmd: Command) {
        if self.storage.is_none() {
            return;
        }
        let mode = self.mode;
        match cmd {
            Command::ScaledRead { bank, row, col, scaler, dst } => {
                let fb = self.flat_bank(bank);
                let u = self.flat_unit(bank.rank, bank.bankgroup, bank.bank);
                let storage = self.storage.as_ref().expect("checked");
                // Split borrow: read column first, then mutate the unit.
                let unit = &mut self.units[u];
                unit.scaled_read(storage, &mode, fb, row, col, scaler, dst);
            }
            Command::Writeback { bank, row, col, src } => {
                let fb = self.flat_bank(bank);
                let u = self.flat_unit(bank.rank, bank.bankgroup, bank.bank);
                let unit = &self.units[u];
                // Clone the source register to end the immutable borrow.
                let reg = unit.temp(src as usize & 1).to_vec();
                let storage = self.storage.as_mut().expect("checked");
                storage.write_col(fb, row, col, &reg);
            }
            Command::QRegLoad { bank, row, col } => {
                let fb = self.flat_bank(bank);
                let u = self.flat_unit(bank.rank, bank.bankgroup, bank.bank);
                let storage = self.storage.as_ref().expect("checked");
                self.units[u].qreg_load(storage, fb, row, col);
            }
            Command::QRegStore { bank, row, col } => {
                let fb = self.flat_bank(bank);
                let u = self.flat_unit(bank.rank, bank.bankgroup, bank.bank);
                let reg = self.units[u].quant_reg().to_vec();
                let storage = self.storage.as_mut().expect("checked");
                storage.poke(fb, row, col, &reg);
            }
            Command::PimAdd { unit, dst } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].add(&mode, dst);
            }
            Command::PimSub { unit, dst } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].sub(&mode, dst);
            }
            Command::Quant { unit, pos, src } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].quant_op(&mode, pos, src);
            }
            Command::Dequant { unit, pos, dst } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].dequant_op(&mode, pos, dst);
            }
            Command::PimMul { unit, dst } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].mul(&mode, dst);
            }
            Command::PimRsqrt { unit, dst } => {
                let u = self.flat_unit(unit.rank, unit.bankgroup, unit.bank);
                self.units[u].rsqrt(&mode, dst);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(rank: usize, bg: usize, bank: usize, row: usize, col: usize) -> Address {
        Address { channel: 0, rank, bankgroup: bg, bank, row, column: col }
    }

    fn drain(c: &mut Controller, limit: u64) -> u64 {
        let start = c.cycles();
        while !c.is_drained() {
            c.tick();
            assert!(c.cycles() - start < limit, "controller did not drain in {limit} cycles");
        }
        c.cycles() - start
    }

    #[test]
    fn single_read_latency() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        c.enqueue_read(1, addr(0, 0, 0, 5, 3)).unwrap();
        drain(&mut c, 1000);
        let comps = c.take_completions();
        assert_eq!(comps.len(), 1);
        // ACT at ~0, RD at tRCD, data at +tCL+tBURST.
        assert_eq!(comps[0].at_cycle, cfg.trcd + cfg.tcl + cfg.tburst);
        assert_eq!(c.stats().count(CommandKind::Activate), 1);
        assert_eq!(c.stats().count(CommandKind::Read), 1);
    }

    #[test]
    fn row_hits_avoid_reactivation() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        for col in 0..8 {
            c.enqueue_read(col as u64, addr(0, 0, 0, 7, col)).unwrap();
        }
        drain(&mut c, 5000);
        assert_eq!(c.stats().count(CommandKind::Activate), 1);
        assert_eq!(c.stats().count(CommandKind::Read), 8);
    }

    #[test]
    fn row_conflict_precharges() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        c.enqueue_read(1, addr(0, 0, 0, 1, 0)).unwrap();
        c.enqueue_read(2, addr(0, 0, 0, 2, 0)).unwrap();
        drain(&mut c, 5000);
        assert_eq!(c.stats().count(CommandKind::Activate), 2);
        assert_eq!(c.stats().count(CommandKind::Precharge), 1);
    }

    #[test]
    fn streaming_reads_hit_peak_bandwidth() {
        // Reads striped across bank groups should sustain ~one burst per
        // tCCD_S — the external bus ceiling.
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        let n = 256;
        for i in 0..n {
            c.enqueue_read(i as u64, addr(0, i % 4, 0, 0, i / 4)).unwrap();
        }
        drain(&mut c, 100_000);
        let cycles = c.cycles();
        let ideal = n as u64 * cfg.tccd_s;
        assert!(cycles < ideal + ideal / 4 + 100, "streaming took {cycles} vs ideal {ideal}");
    }

    #[test]
    fn functional_write_then_read() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, true);
        let data: Vec<u8> = (0..64).collect();
        c.enqueue_write(1, addr(0, 1, 2, 3, 4), Some(data.clone())).unwrap();
        c.enqueue_read(2, addr(0, 1, 2, 3, 4)).unwrap();
        drain(&mut c, 5000);
        let comps = c.take_completions();
        let read = comps.iter().find(|c| c.id == 2).expect("read completion");
        assert_eq!(read.data.as_deref(), Some(&data[..]));
    }

    #[test]
    fn refresh_happens_on_schedule() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        // Idle for two tREFI windows: every rank refreshes twice.
        for _ in 0..2 * cfg.trefi + cfg.trfc * 4 {
            c.tick();
        }
        let refs = c.stats().count(CommandKind::Refresh);
        assert_eq!(refs as usize, 2 * cfg.ranks, "refresh count {refs}");
    }

    #[test]
    fn refresh_closes_open_rows_first() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        c.enqueue_read(1, addr(0, 0, 0, 5, 0)).unwrap();
        drain(&mut c, 1000);
        // Row 5 is open; run past tREFI and ensure a refresh still occurred.
        for _ in 0..cfg.trefi + 10 * cfg.trfc {
            c.tick();
        }
        assert!(c.stats().count(CommandKind::Refresh) >= 1);
        assert!(c.stats().count(CommandKind::Precharge) >= 1);
    }

    #[test]
    fn pim_kernel_executes_in_order_with_single_activation_set() {
        // A miniature momentum-style kernel over 4 columns, three arrays in
        // three banks of one bank group: rows are activated once (plus the
        // cold ACT), never per column — the §IV-D "no unnecessary row
        // activations" property.
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        let mut id = 0;
        for col in 0..4u32 {
            for (bank, scaler) in [(0u8, 0u8), (1, 1)] {
                id += 1;
                c.enqueue_pim(
                    id,
                    0,
                    0,
                    PimOp::ScaledRead { bank, row: 0, col, scaler, dst: (bank & 1) },
                )
                .unwrap();
            }
            id += 1;
            c.enqueue_pim(id, 0, 0, PimOp::Add { bank: 0, dst: 1 }).unwrap();
            id += 1;
            c.enqueue_pim(id, 0, 0, PimOp::Writeback { bank: 2, row: 0, col, src: 1 }).unwrap();
        }
        drain(&mut c, 50_000);
        assert_eq!(c.stats().count(CommandKind::Activate), 3, "one ACT per bank only");
        assert_eq!(c.stats().count(CommandKind::ScaledRead), 8);
        assert_eq!(c.stats().count(CommandKind::PimAdd), 4);
        assert_eq!(c.stats().count(CommandKind::Writeback), 4);
        // No external data moved at all.
        assert_eq!(c.stats().external_bytes(), 0);
        assert_eq!(c.stats().internal_bytes(), 12 * 64);
    }

    #[test]
    fn pim_streams_in_different_bankgroups_overlap() {
        // Two units working in parallel should take much less than 2× one
        // unit's time (bank-group-level parallelism, §IV-A).
        let cfg = DramConfig::ddr4_2133();
        let run = |groups: &[u8]| {
            let mut c = Controller::new(&cfg, false);
            let mut id = 0;
            for &bg in groups {
                for col in 0..64u32 {
                    id += 1;
                    c.enqueue_pim(
                        id,
                        0,
                        bg,
                        PimOp::ScaledRead { bank: 0, row: 0, col, scaler: 0, dst: 0 },
                    )
                    .unwrap();
                    id += 1;
                    c.enqueue_pim(id, 0, bg, PimOp::Writeback { bank: 1, row: 0, col, src: 0 })
                        .unwrap();
                }
            }
            let mut cc = c;
            drain(&mut cc, 500_000)
        };
        let one = run(&[0]);
        let two = run(&[0, 1]);
        assert!((two as f64) < one as f64 * 1.35, "two groups took {two} vs one group {one}");
    }

    #[test]
    fn idle_ranks_enter_powerdown_and_save_energy() {
        let cfg = DramConfig::ddr4_2133();
        let mut pd = Controller::new(&cfg, false);
        let mut no_pd_cfg = cfg.clone();
        no_pd_cfg.powerdown_idle = u64::MAX;
        let mut no_pd = Controller::new(&no_pd_cfg, false);
        // Idle both for one refresh-free window.
        for _ in 0..4000 {
            pd.tick();
            no_pd.tick();
        }
        assert!(pd.stats().powerdown_cycles > 3000 * cfg.ranks as u64 / 2);
        assert_eq!(no_pd.stats().powerdown_cycles, 0);
        assert!(
            pd.stats().energy.background_pj < no_pd.stats().energy.background_pj * 0.85,
            "pd {} vs no-pd {}",
            pd.stats().energy.background_pj,
            no_pd.stats().energy.background_pj
        );
    }

    #[test]
    fn powerdown_exit_costs_txp() {
        let cfg = DramConfig::ddr4_2133();
        // Fresh controller: read completes at tRCD + tCL + tBURST.
        let mut fresh = Controller::new(&cfg, false);
        fresh.enqueue_read(1, addr(0, 0, 0, 5, 3)).unwrap();
        drain(&mut fresh, 1000);
        let fresh_latency = fresh.take_completions()[0].at_cycle;

        // Powered-down controller: same read pays the tXP wake.
        let mut slept = Controller::new(&cfg, false);
        let idle = cfg.powerdown_idle + 10;
        for _ in 0..idle {
            slept.tick();
        }
        assert!(slept.stats().powerdown_cycles > 0, "rank should be asleep");
        let start = slept.cycles();
        slept.enqueue_read(1, addr(0, 0, 0, 5, 3)).unwrap();
        drain(&mut slept, 1000);
        let slept_latency = slept.take_completions()[0].at_cycle - start;
        assert!(
            slept_latency >= fresh_latency + cfg.txp,
            "slept {slept_latency} vs fresh {fresh_latency} + tXP {}",
            cfg.txp
        );
    }

    #[test]
    fn refresh_wakes_powered_down_ranks() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        // Idle across a full refresh interval: ranks power down at ~64
        // cycles, then must wake to refresh on schedule.
        for _ in 0..cfg.trefi + 20 * cfg.trfc {
            c.tick();
        }
        assert!(c.stats().count(CommandKind::Refresh) >= cfg.ranks as u64);
        assert!(c.stats().powerdown_cycles > 0);
    }

    /// Ticks `c` up to `target` the per-cycle way.
    fn tick_to(c: &mut Controller, target: u64) {
        while c.cycles() < target {
            c.tick();
        }
    }

    /// Ticks `c` up to `target` the event-driven way.
    fn fast_forward_to(c: &mut Controller, target: u64) {
        c.run_until(target);
    }

    /// Max distance between consecutive REF commands to the same rank (and
    /// the cold-start distance from cycle 0), from a trace.
    fn max_ref_distance(cfg: &DramConfig, trace: &[TraceEntry]) -> u64 {
        let mut last = vec![0u64; cfg.ranks];
        let mut worst = 0;
        for e in trace {
            if let Command::Refresh { rank } = e.cmd {
                worst = worst.max(e.cycle - last[rank as usize]);
                last[rank as usize] = e.cycle;
            }
        }
        for (r, l) in last.iter().enumerate() {
            assert!(*l > 0, "rank {r} never refreshed");
        }
        worst
    }

    #[test]
    fn refresh_never_starved_by_powerdown() {
        // Regression: a rank parked in precharge power-down with no queued
        // work must still be woken when refresh comes due — REF-to-REF
        // distance stays within the JEDEC 9×tREFI postponement bound.
        let mut cfg = DramConfig::ddr4_2133();
        cfg.powerdown_idle = 16; // aggressive power-down
        for fast in [false, true] {
            let mut c = Controller::new(&cfg, false);
            c.enable_trace();
            let horizon = 12 * cfg.trefi;
            if fast {
                fast_forward_to(&mut c, horizon);
            } else {
                tick_to(&mut c, horizon);
            }
            assert!(c.stats().powerdown_cycles > 0, "ranks never powered down");
            let worst = max_ref_distance(&cfg, &c.take_trace());
            assert!(
                worst <= 9 * cfg.trefi,
                "fast={fast}: REF-to-REF distance {worst} exceeds 9*tREFI {}",
                9 * cfg.trefi
            );
        }
    }

    #[test]
    fn fast_forward_idle_window_matches_per_cycle() {
        // An idle window spanning refreshes and power-down transitions:
        // event-driven stepping must reproduce the per-cycle stats exactly.
        let cfg = DramConfig::ddr4_2133();
        let horizon = 3 * cfg.trefi + 97;
        let mut a = Controller::new(&cfg, false);
        let mut b = Controller::new(&cfg, false);
        a.enable_trace();
        b.enable_trace();
        tick_to(&mut a, horizon);
        fast_forward_to(&mut b, horizon);
        assert_eq!(a.take_trace(), b.take_trace());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fast_forward_traffic_matches_per_cycle() {
        let cfg = DramConfig::ddr4_2133();
        let mut a = Controller::new(&cfg, false);
        let mut b = Controller::new(&cfg, false);
        a.enable_trace();
        b.enable_trace();
        for c in [&mut a, &mut b] {
            for i in 0..24u64 {
                c.enqueue_read(i, addr(0, (i % 4) as usize, 0, 1 + (i % 2) as usize, i as usize))
                    .unwrap();
            }
            for col in 0..8u32 {
                c.enqueue_pim(
                    100 + col as u64,
                    1,
                    0,
                    PimOp::ScaledRead { bank: 0, row: 0, col, scaler: 0, dst: 0 },
                )
                .unwrap();
            }
        }
        drain(&mut a, 100_000);
        while !b.is_drained() {
            let e = b.next_event_cycle();
            b.advance_to(e);
            if !b.is_drained() {
                b.tick();
            }
        }
        assert_eq!(a.cycles(), b.cycles(), "drain cycle counts diverge");
        assert_eq!(a.take_trace(), b.take_trace());
        assert_eq!(a.take_completions(), b.take_completions());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn next_event_cycle_never_skips_an_issue() {
        // At every quiet cycle, the next event must be exactly the next
        // cycle at which the per-cycle reference issues a command.
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        c.enqueue_read(1, addr(0, 0, 0, 5, 3)).unwrap();
        c.enqueue_read(2, addr(0, 0, 0, 9, 3)).unwrap();
        c.enable_trace();
        drain(&mut c, 10_000);
        let trace = c.take_trace();
        let mut replay = Controller::new(&cfg, false);
        replay.enqueue_read(1, addr(0, 0, 0, 5, 3)).unwrap();
        replay.enqueue_read(2, addr(0, 0, 0, 9, 3)).unwrap();
        for entry in &trace {
            // The event estimate from any cycle at or before the next issue
            // must never jump past that issue.
            assert!(
                replay.next_event_cycle() <= entry.cycle,
                "event {} skips issue at {}",
                replay.next_event_cycle(),
                entry.cycle
            );
            while replay.cycles() <= entry.cycle {
                replay.tick();
            }
        }
    }

    #[test]
    fn queue_full_backpressure() {
        let cfg = DramConfig::ddr4_2133();
        let mut c = Controller::new(&cfg, false);
        let mut accepted = 0;
        loop {
            match c.enqueue_read(accepted, addr(0, 0, 0, 0, 0)) {
                Ok(()) => accepted += 1,
                Err(EnqueueError::QueueFull) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(accepted as usize, cfg.queue_depth);
    }
}
