//! Simulation statistics: command counts, bus occupancy, traffic and energy.

use crate::command::CommandKind;
use crate::config::DramConfig;

/// Energy consumed so far, broken down as plotted in Fig. 10
/// (ACT / RD / WR / PIM) plus the components the figure folds into the bars.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activate/precharge energy (pJ).
    pub act_pj: f64,
    /// External read bursts, array component (pJ).
    pub rd_pj: f64,
    /// External write bursts, array component (pJ).
    pub wr_pj: f64,
    /// Off-chip I/O and termination (pJ).
    pub io_pj: f64,
    /// PIM-internal column transfers + ALU/scaler logic (pJ).
    pub pim_pj: f64,
    /// Refresh (pJ).
    pub refresh_pj: f64,
    /// Standby background (pJ).
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.act_pj
            + self.rd_pj
            + self.wr_pj
            + self.io_pj
            + self.pim_pj
            + self.refresh_pj
            + self.background_pj
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &EnergyBreakdown) {
        self.act_pj += o.act_pj;
        self.rd_pj += o.rd_pj;
        self.wr_pj += o.wr_pj;
        self.io_pj += o.io_pj;
        self.pim_pj += o.pim_pj;
        self.refresh_pj += o.refresh_pj;
        self.background_pj += o.background_pj;
    }
}

/// Counters for one channel (or merged across channels).
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Number of channels these counters cover (1 for a single controller;
    /// the sum of the operands' counts after [`Stats::merge`]). Per-bus
    /// rates divide by this so multi-channel merges stay normalized.
    pub channels: u64,
    /// Elapsed memory-clock cycles.
    pub cycles: u64,
    /// Commands issued, by kind.
    pub commands: [u64; CommandKind::COUNT],
    /// Total command-bus slots consumed (= total commands issued).
    pub cmd_slots: u64,
    /// Cycles with the external data bus busy.
    pub data_bus_busy: u64,
    /// Bytes moved over the external bus by reads.
    pub external_read_bytes: u64,
    /// Bytes moved over the external bus by writes.
    pub external_write_bytes: u64,
    /// Bytes moved bank→register inside bank groups (scaled reads, q-reg
    /// loads).
    pub internal_read_bytes: u64,
    /// Bytes moved register→bank inside bank groups (writebacks, q-reg
    /// stores).
    pub internal_write_bytes: u64,
    /// Transactions retired.
    pub completed: u64,
    /// Rank-cycles spent in precharge power-down (IDD2P).
    pub powerdown_cycles: u64,
    /// Rank-cycles with at least one open row (IDD3N background).
    pub bg_active_cycles: u64,
    /// Rank-cycles fully precharged but not powered down (IDD2N).
    pub bg_precharged_cycles: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            channels: 1,
            cycles: 0,
            commands: [0; CommandKind::COUNT],
            cmd_slots: 0,
            data_bus_busy: 0,
            external_read_bytes: 0,
            external_write_bytes: 0,
            internal_read_bytes: 0,
            internal_write_bytes: 0,
            completed: 0,
            powerdown_cycles: 0,
            bg_active_cycles: 0,
            bg_precharged_cycles: 0,
            energy: EnergyBreakdown::default(),
        }
    }
}

impl Stats {
    /// A neutral element for [`Stats::merge`]: like `default()` but with
    /// `channels = 0`, so folding N per-channel stats into it reports
    /// exactly N channels.
    pub fn merge_identity() -> Self {
        Self { channels: 0, ..Self::default() }
    }

    /// Count of commands of `kind`.
    pub fn count(&self, kind: CommandKind) -> u64 {
        self.commands[kind.index()]
    }

    /// Records one issued command of `kind`.
    pub fn record(&mut self, kind: CommandKind) {
        self.commands[kind.index()] += 1;
        self.cmd_slots += 1;
    }

    /// Element-wise accumulation (multi-channel merge). `cycles` takes the
    /// max (channels tick in lockstep); `channels` adds, so per-bus rates
    /// stay normalized to one bus.
    pub fn merge(&mut self, o: &Stats) {
        self.channels += o.channels;
        self.cycles = self.cycles.max(o.cycles);
        for i in 0..CommandKind::COUNT {
            self.commands[i] += o.commands[i];
        }
        self.cmd_slots += o.cmd_slots;
        self.data_bus_busy += o.data_bus_busy;
        self.external_read_bytes += o.external_read_bytes;
        self.external_write_bytes += o.external_write_bytes;
        self.internal_read_bytes += o.internal_read_bytes;
        self.internal_write_bytes += o.internal_write_bytes;
        self.completed += o.completed;
        self.powerdown_cycles += o.powerdown_cycles;
        self.bg_active_cycles += o.bg_active_cycles;
        self.bg_precharged_cycles += o.bg_precharged_cycles;
        self.energy.merge(&o.energy);
    }

    /// Merges per-channel stats **order-insensitively**: the result is
    /// bit-identical for any permutation of `parts`.
    ///
    /// The integer counters commute under addition, but the f64 energy
    /// accumulators do not (`(a + b) + c` ≠ `a + (b + c)` in general), so a
    /// pairwise [`Stats::merge`] fold depends on operand order. This matters
    /// for the threaded multi-channel engine, which may collect channel
    /// stats in completion order: `merge_all` sums every f64 field over a
    /// canonical (totally ordered) sequence of its per-channel
    /// contributions, so merged results cannot depend on which channel
    /// finished first.
    pub fn merge_all<'a, I>(parts: I) -> Stats
    where
        I: IntoIterator<Item = &'a Stats>,
    {
        let parts: Vec<&Stats> = parts.into_iter().collect();
        let mut s = Stats::merge_identity();
        for p in &parts {
            s.merge(p);
        }
        // Replace the order-dependent f64 sums with canonical-order sums.
        let sum = |field: fn(&Stats) -> f64| -> f64 {
            let mut vals: Vec<f64> = parts.iter().map(|p| field(p)).collect();
            vals.sort_by(f64::total_cmp);
            vals.iter().sum()
        };
        s.energy = EnergyBreakdown {
            act_pj: sum(|p| p.energy.act_pj),
            rd_pj: sum(|p| p.energy.rd_pj),
            wr_pj: sum(|p| p.energy.wr_pj),
            io_pj: sum(|p| p.energy.io_pj),
            pim_pj: sum(|p| p.energy.pim_pj),
            refresh_pj: sum(|p| p.energy.refresh_pj),
            background_pj: sum(|p| p.energy.background_pj),
        };
        s
    }

    /// Elapsed wall-clock time in nanoseconds.
    pub fn elapsed_ns(&self, cfg: &DramConfig) -> f64 {
        self.cycles as f64 * cfg.cycle_ns()
    }

    /// Total bytes moved over the external bus.
    pub fn external_bytes(&self) -> u64 {
        self.external_read_bytes + self.external_write_bytes
    }

    /// Total bytes moved inside bank groups by PIM column ops.
    pub fn internal_bytes(&self) -> u64 {
        self.internal_read_bytes + self.internal_write_bytes
    }

    /// Achieved external bandwidth in bytes/second.
    pub fn external_bw(&self, cfg: &DramConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.external_bytes() as f64 / (self.elapsed_ns(cfg) * 1e-9)
    }

    /// Achieved *DRAM-internal* bandwidth in bytes/second: every byte that
    /// crossed a bank's column interface, whether it went off-chip or into a
    /// PIM register. This is the Fig. 11 (bottom) metric.
    pub fn internal_bw(&self, cfg: &DramConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.external_bytes() + self.internal_bytes()) as f64 / (self.elapsed_ns(cfg) * 1e-9)
    }

    /// Command-bus utilization relative to a *single direct-attach bus*
    /// (1 command/tCK): the Fig. 11 (top) metric. Buffered configurations
    /// can exceed 1.0 because each rank's buffer device issues locally —
    /// the paper's y-axis runs to 400 %. Channels have independent command
    /// buses, so merged multi-channel stats are normalized per channel.
    pub fn command_bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.cmd_slots as f64 / (self.cycles * self.channels.max(1)) as f64
    }

    /// Data-bus utilization (0..=1), per channel (each channel has its own
    /// data bus).
    pub fn data_bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.data_bus_busy as f64 / (self.cycles * self.channels.max(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut s = Stats::default();
        s.record(CommandKind::Read);
        s.record(CommandKind::Read);
        s.record(CommandKind::Activate);
        assert_eq!(s.count(CommandKind::Read), 2);
        assert_eq!(s.count(CommandKind::Activate), 1);
        assert_eq!(s.cmd_slots, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Stats { cycles: 100, ..Default::default() };
        a.record(CommandKind::Read);
        a.external_read_bytes = 64;
        a.energy.rd_pj = 10.0;
        let mut b = Stats { cycles: 120, ..Default::default() };
        b.record(CommandKind::Write);
        b.external_write_bytes = 64;
        b.energy.wr_pj = 12.0;
        a.merge(&b);
        assert_eq!(a.cycles, 120);
        assert_eq!(a.cmd_slots, 2);
        assert_eq!(a.external_bytes(), 128);
        assert!((a.energy.total_pj() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_math() {
        let cfg = DramConfig::ddr4_2133();
        let s = Stats {
            cycles: 1000,
            external_read_bytes: 64 * 250, // one burst per 4 cycles = peak
            ..Default::default()
        };
        let bw = s.external_bw(&cfg);
        assert!((bw / cfg.peak_external_bw() - 1.0).abs() < 0.01, "bw {bw}");
    }

    #[test]
    fn utilizations_bounded() {
        let mut s = Stats {
            cycles: 10,
            cmd_slots: 25, // buffered mode can exceed 1×
            ..Default::default()
        };
        assert!((s.command_bus_utilization() - 2.5).abs() < 1e-12);
        s.data_bus_busy = 10;
        assert!((s.data_bus_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_channel_merge_normalizes_bus_utilization() {
        // Two channels, each with its command bus 80 % utilized: the merged
        // figure must stay 0.8, not 1.6 (the buses are independent).
        let mut m = Stats::merge_identity();
        for _ in 0..2 {
            let mut ch = Stats { cycles: 100, data_bus_busy: 40, ..Default::default() };
            ch.cmd_slots = 80;
            m.merge(&ch);
        }
        assert_eq!(m.channels, 2);
        assert_eq!(m.cmd_slots, 160);
        assert!((m.command_bus_utilization() - 0.8).abs() < 1e-12);
        assert!((m.data_bus_utilization() - 0.4).abs() < 1e-12);
        // A direct-mode system can never exceed 1.0 per channel no matter
        // how many channels are merged.
        assert!(m.command_bus_utilization() <= 1.0);
    }

    #[test]
    fn merge_all_is_order_insensitive() {
        // Per-channel stats with deliberately awkward f64 magnitudes: a
        // pairwise fold of these energies is order-dependent at the ULP
        // level, which is exactly what merge_all must not be (the threaded
        // engine may collect channels in completion order).
        let mk = |i: u64| {
            let mut s = Stats { cycles: 1000 + i, ..Default::default() };
            s.record(CommandKind::Read);
            s.external_read_bytes = 64 * (i + 1);
            s.energy.rd_pj = 1e-7 * 3f64.powi(i as i32) + 1e9 / (i + 1) as f64;
            s.energy.act_pj = 0.1 + i as f64 * 1e8;
            s.energy.background_pj = (i as f64).exp();
            s
        };
        let chans: Vec<Stats> = (0..5).map(mk).collect();
        let in_order = Stats::merge_all(&chans);
        let reversed = Stats::merge_all(chans.iter().rev());
        let shuffled: Vec<&Stats> = [3usize, 0, 4, 2, 1].iter().map(|&i| &chans[i]).collect();
        let shuffled = Stats::merge_all(shuffled);
        assert_eq!(in_order, reversed, "reversed merge diverges");
        assert_eq!(in_order, shuffled, "shuffled merge diverges");
        assert_eq!(in_order.channels, 5);
        assert_eq!(in_order.cycles, 1004);
        assert_eq!(in_order.cmd_slots, 5);
    }

    #[test]
    fn merge_all_of_one_matches_merge() {
        let mut s = Stats { cycles: 77, ..Default::default() };
        s.record(CommandKind::Activate);
        s.energy.act_pj = 12.5;
        let merged = Stats::merge_all(std::iter::once(&s));
        let mut pairwise = Stats::merge_identity();
        pairwise.merge(&s);
        assert_eq!(merged, pairwise);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = Stats::default();
        let cfg = DramConfig::ddr4_2133();
        assert_eq!(s.external_bw(&cfg), 0.0);
        assert_eq!(s.internal_bw(&cfg), 0.0);
        assert_eq!(s.command_bus_utilization(), 0.0);
    }
}
