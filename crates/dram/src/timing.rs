//! The command-to-command timing constraint engine.
//!
//! Organized DRAMsim3-style: every issued command updates
//! "earliest-allowed-issue" registers at four scopes — same bank, same bank
//! group, same rank, channel — and a command is issuable at cycle `t` only if
//! `t` is at or past the maximum of its scopes' registers (plus data-bus
//! availability for external column commands and the tFAW window for
//! activates).
//!
//! GradPIM commands follow §IV-C exactly:
//!
//! * **Scaled read / Q-reg load** behave like a column read *without the data
//!   bus*: they occupy the bank-group I/O gating for tCCD_L, honour tRCD
//!   after ACT and impose tRTP before PRE — but impose **no** tCCD_S at rank
//!   scope, so units in different bank groups run fully in parallel.
//! * **Writeback / Q-reg store** are the latter half of a write: tCCD_L on
//!   the bank-group I/O, tWR before PRE, no tCWL/tBURST.
//! * **Parallel ALU ops** occupy only the per-unit ALU for tPIM.
//! * tFAW/tRRD are kept unscaled (the paper found the power-motivated
//!   rescaling changes them by <1 %).

use crate::command::{Command, CommandKind};
use crate::config::{DataBusScope, DramConfig, PimPlacement};

/// Earliest-allowed cycles at bank scope.
#[derive(Debug, Clone, Copy, Default)]
struct BankTiming {
    act: u64,
    pre: u64,
    col: u64, // any column command to this bank (tRCD-gated)
}

/// Earliest-allowed cycles at bank-group scope.
#[derive(Debug, Clone, Copy, Default)]
struct BankGroupTiming {
    act: u64,
    rd: u64,
    wr: u64,
    alu: u64,
}

/// Earliest-allowed cycles at rank scope.
#[derive(Debug, Clone, Default)]
struct RankTiming {
    act: u64,
    rd: u64,
    wr: u64,
    /// Sliding window of the last four ACT issue cycles (tFAW).
    faw: std::collections::VecDeque<u64>,
    /// All commands blocked until this cycle (refresh recovery).
    all: u64,
}

/// Channel-scope shared-resource state.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelTiming {
    /// Data bus reserved until this cycle.
    data_free: u64,
    /// Earliest next read issue (write→read turnaround).
    rd: u64,
    /// Earliest next write issue (read→write turnaround).
    wr: u64,
    /// Rank that last owned the data bus (tRTRS accounting).
    last_data_rank: Option<u8>,
    /// When the last data burst ends (for tRTRS).
    last_data_end: u64,
}

/// Complete timing state for one channel.
#[derive(Debug, Clone)]
pub struct TimingState {
    cfg: DramConfig,
    banks: Vec<BankTiming>,
    groups: Vec<BankGroupTiming>,
    /// Per-bank ALU/local-I/O state for `PimPlacement::PerBank`.
    bank_alus: Vec<u64>,
    ranks: Vec<RankTiming>,
    /// One entry for a shared channel bus; one per rank for
    /// `DataBusScope::PerRank` (buffered designs whose buffer chips talk to
    /// their local rank, e.g. TensorDIMM).
    data: Vec<ChannelTiming>,
}

impl TimingState {
    /// Fresh timing state (everything issuable at cycle 0).
    pub fn new(cfg: &DramConfig) -> Self {
        let nbanks = cfg.ranks * cfg.banks_per_rank();
        let ngroups = cfg.ranks * cfg.bankgroups;
        let nbuses = match cfg.data_bus {
            DataBusScope::Channel => 1,
            DataBusScope::PerRank => cfg.ranks,
        };
        Self {
            cfg: cfg.clone(),
            banks: vec![BankTiming::default(); nbanks],
            groups: vec![BankGroupTiming::default(); ngroups],
            bank_alus: vec![0; nbanks],
            ranks: vec![RankTiming::default(); cfg.ranks],
            data: vec![ChannelTiming::default(); nbuses],
        }
    }

    fn bus_idx(&self, rank: u8) -> usize {
        match self.cfg.data_bus {
            DataBusScope::Channel => 0,
            DataBusScope::PerRank => rank as usize,
        }
    }

    fn bank_idx(&self, cmd: &Command) -> usize {
        let b = cmd.bank().expect("bank-addressed command");
        (b.rank as usize * self.cfg.bankgroups + b.bankgroup as usize) * self.cfg.banks_per_group
            + b.bank as usize
    }

    fn group_idx(&self, cmd: &Command) -> usize {
        let b = cmd.bank().expect("bank-addressed command");
        b.rank as usize * self.cfg.bankgroups + b.bankgroup as usize
    }

    /// Whether local (PIM) column/ALU constraints live at bank or bank-group
    /// scope.
    fn per_bank_pim(&self) -> bool {
        self.cfg.pim_placement == PimPlacement::PerBank
    }

    /// Earliest cycle at which `cmd` may issue, given everything issued so
    /// far. Pure query; does not mutate state.
    pub fn earliest(&self, cmd: &Command) -> u64 {
        let c = &self.cfg;
        let kind = cmd.kind();
        let rank = &self.ranks[cmd.rank() as usize];
        let mut t = rank.all;

        match kind {
            CommandKind::Activate => {
                let bank = &self.banks[self.bank_idx(cmd)];
                let group = &self.groups[self.group_idx(cmd)];
                t = t.max(bank.act).max(group.act).max(rank.act);
                if rank.faw.len() == 4 {
                    t = t.max(rank.faw[0] + c.tfaw);
                }
            }
            CommandKind::Precharge => {
                let bank = &self.banks[self.bank_idx(cmd)];
                t = t.max(bank.pre);
            }
            CommandKind::PrechargeAll => {
                // Must satisfy the precharge constraint of every bank in the
                // rank.
                let r = cmd.rank() as usize;
                let base = r * c.banks_per_rank();
                for b in 0..c.banks_per_rank() {
                    t = t.max(self.banks[base + b].pre);
                }
            }
            CommandKind::Read => {
                let bank = &self.banks[self.bank_idx(cmd)];
                let group = &self.groups[self.group_idx(cmd)];
                let bus = &self.data[self.bus_idx(cmd.rank())];
                t = t.max(bank.col).max(group.rd).max(rank.rd).max(bus.rd);
                t = t.max(self.data_bus_earliest(cmd, c.tcl));
            }
            CommandKind::Write => {
                let bank = &self.banks[self.bank_idx(cmd)];
                let group = &self.groups[self.group_idx(cmd)];
                let bus = &self.data[self.bus_idx(cmd.rank())];
                t = t.max(bank.col).max(group.wr).max(rank.wr).max(bus.wr);
                t = t.max(self.data_bus_earliest(cmd, c.tcwl));
            }
            CommandKind::Refresh => {
                // All banks must be precharged (tRP satisfied) and quiet.
                let r = cmd.rank() as usize;
                let base = r * c.banks_per_rank();
                for b in 0..c.banks_per_rank() {
                    t = t.max(self.banks[base + b].act);
                }
            }
            CommandKind::ScaledRead | CommandKind::QRegLoad => {
                let bank = &self.banks[self.bank_idx(cmd)];
                t = t.max(bank.col);
                t = t.max(self.local_io_rd(cmd));
            }
            CommandKind::Writeback | CommandKind::QRegStore => {
                let bank = &self.banks[self.bank_idx(cmd)];
                t = t.max(bank.col);
                t = t.max(self.local_io_wr(cmd));
            }
            CommandKind::PimAdd
            | CommandKind::PimSub
            | CommandKind::Quant
            | CommandKind::Dequant
            | CommandKind::PimMul
            | CommandKind::PimRsqrt => {
                t = t.max(self.alu(cmd));
            }
        }
        t
    }

    fn data_bus_earliest(&self, cmd: &Command, lat: u64) -> u64 {
        // The burst must start at or after the bus frees; if the previous
        // burst came from a different rank over a shared bus, add tRTRS.
        let bus = &self.data[self.bus_idx(cmd.rank())];
        let mut free = bus.data_free;
        if let Some(last) = bus.last_data_rank {
            if last != cmd.rank() {
                free = free.max(bus.last_data_end + self.cfg.trtrs);
            }
        }
        free.saturating_sub(lat)
    }

    fn local_io_rd(&self, cmd: &Command) -> u64 {
        if self.per_bank_pim() {
            // Per-bank units: the bank's local datapath paces at tCCD_L; use
            // the bank ALU slot array to track it plus group rd for external
            // sharing.
            self.bank_col_pace(cmd)
        } else {
            self.groups[self.group_idx(cmd)].rd
        }
    }

    fn local_io_wr(&self, cmd: &Command) -> u64 {
        if self.per_bank_pim() {
            self.bank_col_pace(cmd)
        } else {
            self.groups[self.group_idx(cmd)].wr
        }
    }

    /// In per-bank placement the bank's private column pacing is tracked in
    /// `bank_alus` (shared with the per-bank ALU — the unit is one pipeline).
    fn bank_col_pace(&self, cmd: &Command) -> u64 {
        self.bank_alus[self.bank_idx(cmd)]
    }

    fn alu(&self, cmd: &Command) -> u64 {
        if self.per_bank_pim() {
            self.bank_alus[self.bank_idx(cmd)]
        } else {
            self.groups[self.group_idx(cmd)].alu
        }
    }

    /// Records the issue of `cmd` at cycle `t`, updating every affected
    /// scope.
    ///
    /// # Panics
    ///
    /// Debug-panics if `t` violates [`TimingState::earliest`].
    pub fn issue(&mut self, cmd: &Command, t: u64) {
        debug_assert!(
            t >= self.earliest(cmd),
            "command {cmd:?} issued at {t} before earliest {}",
            self.earliest(cmd)
        );
        let c = self.cfg.clone();
        let kind = cmd.kind();
        match kind {
            CommandKind::Activate => {
                let bi = self.bank_idx(cmd);
                let gi = self.group_idx(cmd);
                let ri = cmd.rank() as usize;
                let bank = &mut self.banks[bi];
                bank.act = bank.act.max(t + c.trc);
                bank.pre = bank.pre.max(t + c.tras);
                bank.col = bank.col.max(t + c.trcd);
                let group = &mut self.groups[gi];
                group.act = group.act.max(t + c.trrd_l);
                let rank = &mut self.ranks[ri];
                rank.act = rank.act.max(t + c.trrd_s);
                rank.faw.push_back(t);
                if rank.faw.len() > 4 {
                    rank.faw.pop_front();
                }
            }
            CommandKind::Precharge => {
                let bi = self.bank_idx(cmd);
                let bank = &mut self.banks[bi];
                bank.act = bank.act.max(t + c.trp);
            }
            CommandKind::PrechargeAll => {
                let r = cmd.rank() as usize;
                let base = r * c.banks_per_rank();
                for b in 0..c.banks_per_rank() {
                    let bank = &mut self.banks[base + b];
                    bank.act = bank.act.max(t + c.trp);
                }
            }
            CommandKind::Read => {
                let bi = self.bank_idx(cmd);
                let gi = self.group_idx(cmd);
                let ri = cmd.rank() as usize;
                self.banks[bi].pre = self.banks[bi].pre.max(t + c.trtp);
                let group = &mut self.groups[gi];
                group.rd = group.rd.max(t + c.tccd_l);
                group.wr = group.wr.max(t + c.tccd_l);
                let rank = &mut self.ranks[ri];
                rank.rd = rank.rd.max(t + c.tccd_s);
                rank.wr = rank.wr.max(t + c.tccd_s);
                // Read→write bus turnaround at bus scope.
                let turn = t + c.tcl + c.tburst + 2 - c.tcwl.min(c.tcl + c.tburst + 1);
                let bi = self.bus_idx(cmd.rank());
                self.data[bi].wr = self.data[bi].wr.max(turn);
                self.reserve_data(cmd.rank(), t + c.tcl, t + c.tcl + c.tburst);
            }
            CommandKind::Write => {
                let bi = self.bank_idx(cmd);
                let gi = self.group_idx(cmd);
                let ri = cmd.rank() as usize;
                self.banks[bi].pre = self.banks[bi].pre.max(t + c.tcwl + c.tburst + c.twr);
                let group = &mut self.groups[gi];
                group.wr = group.wr.max(t + c.tccd_l);
                group.rd = group.rd.max(t + c.tcwl + c.tburst + c.twtr_l);
                let rank = &mut self.ranks[ri];
                rank.wr = rank.wr.max(t + c.tccd_s);
                rank.rd = rank.rd.max(t + c.tcwl + c.tburst + c.twtr_s);
                self.reserve_data(cmd.rank(), t + c.tcwl, t + c.tcwl + c.tburst);
            }
            CommandKind::Refresh => {
                let ri = cmd.rank() as usize;
                self.ranks[ri].all = self.ranks[ri].all.max(t + c.trfc);
            }
            CommandKind::ScaledRead | CommandKind::QRegLoad => {
                let bi = self.bank_idx(cmd);
                self.banks[bi].pre = self.banks[bi].pre.max(t + c.trtp);
                if self.per_bank_pim() {
                    self.bank_alus[bi] = self.bank_alus[bi].max(t + c.tccd_l);
                } else {
                    let gi = self.group_idx(cmd);
                    let group = &mut self.groups[gi];
                    group.rd = group.rd.max(t + c.tccd_l);
                    group.wr = group.wr.max(t + c.tccd_l);
                }
            }
            CommandKind::Writeback | CommandKind::QRegStore => {
                let bi = self.bank_idx(cmd);
                // Data reaches the sense amplifiers through the bank-group
                // I/O: restore completes tCCD_L (transfer) + tWR later.
                self.banks[bi].pre = self.banks[bi].pre.max(t + c.tccd_l + c.twr);
                if self.per_bank_pim() {
                    self.bank_alus[bi] = self.bank_alus[bi].max(t + c.tccd_l);
                } else {
                    let gi = self.group_idx(cmd);
                    let group = &mut self.groups[gi];
                    group.rd = group.rd.max(t + c.tccd_l);
                    group.wr = group.wr.max(t + c.tccd_l);
                }
            }
            CommandKind::PimAdd
            | CommandKind::PimSub
            | CommandKind::Quant
            | CommandKind::Dequant
            | CommandKind::PimMul
            | CommandKind::PimRsqrt => {
                if self.per_bank_pim() {
                    let bi = self.bank_idx(cmd);
                    self.bank_alus[bi] = self.bank_alus[bi].max(t + c.tpim);
                } else {
                    let gi = self.group_idx(cmd);
                    let group = &mut self.groups[gi];
                    group.alu = group.alu.max(t + c.tpim);
                }
            }
        }
    }

    fn reserve_data(&mut self, rank: u8, _start: u64, end: u64) {
        let bi = self.bus_idx(rank);
        let bus = &mut self.data[bi];
        bus.data_free = bus.data_free.max(end);
        bus.last_data_rank = Some(rank);
        bus.last_data_end = end;
    }

    /// Cycles during which the (first) data bus is reserved so far (upper
    /// bound; used by stats).
    pub fn data_bus_reserved_until(&self) -> u64 {
        self.data[0].data_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    fn bank(rank: u8, bg: u8, b: u8) -> BankAddr {
        BankAddr { rank, bankgroup: bg, bank: b }
    }

    #[test]
    fn act_to_read_honours_trcd() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        let b = bank(0, 0, 0);
        let act = Command::Activate { bank: b, row: 0 };
        assert_eq!(t.earliest(&act), 0);
        t.issue(&act, 0);
        let rd = Command::Read { bank: b, row: 0, col: 0 };
        assert_eq!(t.earliest(&rd), c.trcd);
    }

    #[test]
    fn back_to_back_reads_same_vs_cross_bankgroup() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        for bg in 0..2 {
            t.issue(&Command::Activate { bank: bank(0, bg, 0), row: 0 }, (bg as u64) * c.trrd_l);
        }
        let t0 = c.trcd + c.trrd_l;
        t.issue(&Command::Read { bank: bank(0, 0, 0), row: 0, col: 0 }, t0);
        // Same bank group: tCCD_L.
        let same = Command::Read { bank: bank(0, 0, 0), row: 0, col: 1 };
        assert_eq!(t.earliest(&same), t0 + c.tccd_l);
        // Different bank group: tCCD_S.
        let cross = Command::Read { bank: bank(0, 1, 0), row: 0, col: 0 };
        assert_eq!(t.earliest(&cross), t0 + c.tccd_s);
    }

    #[test]
    fn scaled_reads_do_not_interfere_across_bankgroups() {
        // §IV-C: "the scaled read occupies only the local bank group I/O
        // gating and thus does not interfere with the other scaled read
        // commands in different bank groups".
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        t.issue(&Command::Activate { bank: bank(0, 1, 0), row: 0 }, c.trrd_l);
        let t0 = c.trcd + c.trrd_l;
        let sr0 = Command::ScaledRead { bank: bank(0, 0, 0), row: 0, col: 0, scaler: 0, dst: 0 };
        t.issue(&sr0, t0);
        // Same bank group paced at tCCD_L…
        let sr_same =
            Command::ScaledRead { bank: bank(0, 0, 0), row: 0, col: 1, scaler: 0, dst: 1 };
        assert_eq!(t.earliest(&sr_same), t0 + c.tccd_l);
        // …but a different bank group can issue immediately (no tCCD_S).
        let sr_cross =
            Command::ScaledRead { bank: bank(0, 1, 0), row: 0, col: 0, scaler: 0, dst: 0 };
        assert_eq!(t.earliest(&sr_cross), t0);
    }

    #[test]
    fn alu_paced_by_tpim_within_bankgroup_only() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        let add0 = Command::PimAdd { unit: bank(0, 0, 0), dst: 0 };
        t.issue(&add0, 10);
        // Same unit: +tPIM.
        assert_eq!(t.earliest(&Command::PimAdd { unit: bank(0, 0, 0), dst: 1 }), 10 + c.tpim);
        // Other bank group's unit: free.
        assert_eq!(t.earliest(&Command::PimAdd { unit: bank(0, 1, 0), dst: 0 }), 0);
        // §IV-C: tPIM "does not interfere with any other commands" — a
        // scaled read in the same group is not blocked by the ALU.
        t.issue(&Command::Activate { bank: bank(0, 0, 1), row: 3 }, 11);
        let sr = Command::ScaledRead { bank: bank(0, 0, 1), row: 3, col: 0, scaler: 0, dst: 0 };
        assert_eq!(t.earliest(&sr), 11 + c.trcd);
    }

    #[test]
    fn writeback_delays_precharge_by_twr() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        let b = bank(0, 0, 0);
        t.issue(&Command::Activate { bank: b, row: 0 }, 0);
        let wb = Command::Writeback { bank: b, row: 0, col: 0, src: 0 };
        let t_wb = t.earliest(&wb);
        t.issue(&wb, t_wb);
        let pre = Command::Precharge { bank: b };
        assert_eq!(t.earliest(&pre), (t_wb + c.tccd_l + c.twr).max(c.tras));
    }

    #[test]
    fn writeback_skips_data_bus_entirely() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        // Saturate the data bus with an external write.
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        t.issue(&Command::Activate { bank: bank(0, 1, 0), row: 0 }, c.trrd_l);
        let wr = Command::Write { bank: bank(0, 0, 0), row: 0, col: 0 };
        let t_wr = t.earliest(&wr);
        t.issue(&wr, t_wr);
        // A writeback in another bank group is *not* delayed by the bus.
        let wb = Command::Writeback { bank: bank(0, 1, 0), row: 0, col: 0, src: 0 };
        assert_eq!(t.earliest(&wb), c.trrd_l + c.trcd);
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        let mut when = 0;
        for i in 0..4 {
            let cmd = Command::Activate { bank: bank(0, (i % 4) as u8, i as u8 / 4), row: 0 };
            when = t.earliest(&cmd);
            t.issue(&cmd, when);
        }
        let fifth = Command::Activate { bank: bank(0, 0, 1), row: 0 };
        assert!(
            t.earliest(&fifth) >= c.tfaw,
            "fifth ACT at {} < tFAW {}",
            t.earliest(&fifth),
            c.tfaw
        );
        let _ = when;
    }

    #[test]
    fn refresh_blocks_rank() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::Refresh { rank: 0 }, 5);
        let act0 = Command::Activate { bank: bank(0, 0, 0), row: 0 };
        assert_eq!(t.earliest(&act0), 5 + c.trfc);
        // Rank 1 unaffected.
        let act1 = Command::Activate { bank: bank(1, 0, 0), row: 0 };
        assert_eq!(t.earliest(&act1), 0);
    }

    #[test]
    fn write_to_read_turnaround() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        let wr = Command::Write { bank: bank(0, 0, 0), row: 0, col: 0 };
        let tw = t.earliest(&wr);
        t.issue(&wr, tw);
        let rd_same_bg = Command::Read { bank: bank(0, 0, 0), row: 0, col: 1 };
        assert_eq!(t.earliest(&rd_same_bg), tw + c.tcwl + c.tburst + c.twtr_l);
    }

    #[test]
    fn cross_rank_reads_pay_trtrs_on_the_shared_bus() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        t.issue(&Command::Activate { bank: bank(1, 0, 0), row: 0 }, c.trrd_s);
        let t0 = c.trcd + c.trrd_s;
        t.issue(&Command::Read { bank: bank(0, 0, 0), row: 0, col: 0 }, t0);
        // Same rank, different bank group: tCCD_S only.
        // Different rank: the data bus must also clear tRTRS after the
        // previous burst — strictly later than the same-rank case.
        let cross = Command::Read { bank: bank(1, 0, 0), row: 0, col: 0 };
        let earliest = t.earliest(&cross);
        assert!(
            earliest >= t0 + c.tburst + c.trtrs - c.tcl.min(t0 + c.tburst + c.trtrs),
            "cross-rank earliest {earliest}"
        );
        // The burst start (earliest + tCL) must not overlap the previous
        // burst window [t0+tCL, t0+tCL+tBURST) plus tRTRS.
        assert!(earliest + c.tcl >= t0 + c.tcl + c.tburst + c.trtrs);
    }

    #[test]
    fn same_bank_act_to_act_honours_trc() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        let b = bank(0, 0, 0);
        t.issue(&Command::Activate { bank: b, row: 0 }, 0);
        t.issue(&Command::Precharge { bank: b }, c.tras);
        let again = Command::Activate { bank: b, row: 1 };
        // tRC from the first ACT (=52) dominates tRAS + tRP here too.
        assert_eq!(t.earliest(&again), c.trc.max(c.tras + c.trp));
    }

    #[test]
    fn cross_bankgroup_writes_pace_at_tccd_s() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        t.issue(&Command::Activate { bank: bank(0, 1, 0), row: 0 }, c.trrd_l);
        let t0 = c.trcd + c.trrd_l;
        t.issue(&Command::Write { bank: bank(0, 0, 0), row: 0, col: 0 }, t0);
        let cross = Command::Write { bank: bank(0, 1, 0), row: 0, col: 0 };
        assert_eq!(t.earliest(&cross), t0 + c.tccd_s);
        let same = Command::Write { bank: bank(0, 0, 0), row: 0, col: 1 };
        assert_eq!(t.earliest(&same), t0 + c.tccd_l);
    }

    #[test]
    fn extended_alu_ops_share_tpim_pacing() {
        let c = cfg();
        let mut t = TimingState::new(&c);
        t.issue(&Command::PimMul { unit: bank(0, 0, 0), dst: 0 }, 4);
        assert_eq!(t.earliest(&Command::PimRsqrt { unit: bank(0, 0, 0), dst: 0 }), 4 + c.tpim);
        assert_eq!(t.earliest(&Command::PimAdd { unit: bank(0, 0, 0), dst: 0 }), 4 + c.tpim);
        // Other units unaffected.
        assert_eq!(t.earliest(&Command::PimRsqrt { unit: bank(0, 1, 0), dst: 0 }), 0);
    }

    #[test]
    fn per_bank_placement_moves_pim_pacing_to_banks() {
        let mut c = cfg();
        c.pim_placement = PimPlacement::PerBank;
        let mut t = TimingState::new(&c);
        t.issue(&Command::Activate { bank: bank(0, 0, 0), row: 0 }, 0);
        t.issue(&Command::Activate { bank: bank(0, 0, 1), row: 0 }, c.trrd_l);
        let t0 = c.trcd + c.trrd_l;
        let sr0 = Command::ScaledRead { bank: bank(0, 0, 0), row: 0, col: 0, scaler: 0, dst: 0 };
        t.issue(&sr0, t0);
        // Same bank: paced.
        let sr_same =
            Command::ScaledRead { bank: bank(0, 0, 0), row: 0, col: 1, scaler: 0, dst: 1 };
        assert_eq!(t.earliest(&sr_same), t0 + c.tccd_l);
        // Sibling bank in the same group: independent unit, no pacing.
        let sr_sib = Command::ScaledRead { bank: bank(0, 0, 1), row: 0, col: 0, scaler: 0, dst: 0 };
        assert_eq!(t.earliest(&sr_sib), t0);
    }
}
