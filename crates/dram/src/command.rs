//! The DDR4 command set plus the GradPIM protocol extension (§IV-B, Table I).
//!
//! GradPIM adds seven commands on top of the standard set, mapped onto RFU
//! encodings (see `gradpim_core::isa` for the bit-level truth table):
//!
//! * **Scaled read** — bank column → temporary register, scaled by one of
//!   four pinned hyper-parameter values.
//! * **Writeback** — temporary register → bank column (the latter half of a
//!   DDR write).
//! * **Q-register load/store** — bank column ↔ quantization register (the
//!   Table I "Q. Reg" RD/WR command).
//! * **Parallel add/sub** — `Reg0 op Reg1` → chosen destination register.
//! * **Quant / Dequant** — temporary register ↔ a 1/ratio slice of the
//!   quantization register.

use crate::address::Address;

/// Identifies one bank inside a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BankAddr {
    /// Rank within the channel.
    pub rank: u8,
    /// Bank group within the rank.
    pub bankgroup: u8,
    /// Bank within the bank group.
    pub bank: u8,
}

impl From<Address> for BankAddr {
    fn from(a: Address) -> Self {
        BankAddr { rank: a.rank as u8, bankgroup: a.bankgroup as u8, bank: a.bank as u8 }
    }
}

/// Discriminates command kinds for stats/timing tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CommandKind {
    /// Row activate.
    Activate,
    /// Single-bank precharge.
    Precharge,
    /// All-bank precharge (one rank).
    PrechargeAll,
    /// Column read (external, drives the data bus).
    Read,
    /// Column write (external, drives the data bus).
    Write,
    /// All-bank refresh (one rank).
    Refresh,
    /// GradPIM scaled read: column → temp register, scaled.
    ScaledRead,
    /// GradPIM writeback: temp register → column.
    Writeback,
    /// GradPIM quantization-register load: column → quant register.
    QRegLoad,
    /// GradPIM quantization-register store: quant register → column.
    QRegStore,
    /// GradPIM parallel add.
    PimAdd,
    /// GradPIM parallel subtract.
    PimSub,
    /// GradPIM quantization (temp reg → quant-reg slice).
    Quant,
    /// GradPIM dequantization (quant-reg slice → temp reg).
    Dequant,
    /// Extended-ALU parallel multiply (§VIII expandability; requires
    /// `DramConfig::extended_alu`).
    PimMul,
    /// Extended-ALU reciprocal square root (§VIII; requires
    /// `DramConfig::extended_alu`).
    PimRsqrt,
}

impl CommandKind {
    /// Number of command kinds (for dense stat arrays).
    pub const COUNT: usize = 16;

    /// All kinds, index-ordered.
    pub const ALL: [CommandKind; Self::COUNT] = [
        CommandKind::Activate,
        CommandKind::Precharge,
        CommandKind::PrechargeAll,
        CommandKind::Read,
        CommandKind::Write,
        CommandKind::Refresh,
        CommandKind::ScaledRead,
        CommandKind::Writeback,
        CommandKind::QRegLoad,
        CommandKind::QRegStore,
        CommandKind::PimAdd,
        CommandKind::PimSub,
        CommandKind::Quant,
        CommandKind::Dequant,
        CommandKind::PimMul,
        CommandKind::PimRsqrt,
    ];

    /// Dense index for stat arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for the commands added by GradPIM.
    pub fn is_pim(self) -> bool {
        matches!(
            self,
            CommandKind::ScaledRead
                | CommandKind::Writeback
                | CommandKind::QRegLoad
                | CommandKind::QRegStore
                | CommandKind::PimAdd
                | CommandKind::PimSub
                | CommandKind::Quant
                | CommandKind::Dequant
                | CommandKind::PimMul
                | CommandKind::PimRsqrt
        )
    }

    /// True for PIM commands that move a column between a bank and a PIM
    /// register (occupying the bank-group I/O gating for tCCD_L, §IV-C).
    pub fn is_pim_column(self) -> bool {
        matches!(
            self,
            CommandKind::ScaledRead
                | CommandKind::Writeback
                | CommandKind::QRegLoad
                | CommandKind::QRegStore
        )
    }

    /// True for PIM commands executed by the parallel ALU (occupying it for
    /// tPIM, §IV-C).
    pub fn is_pim_alu(self) -> bool {
        matches!(
            self,
            CommandKind::PimAdd
                | CommandKind::PimSub
                | CommandKind::Quant
                | CommandKind::Dequant
                | CommandKind::PimMul
                | CommandKind::PimRsqrt
        )
    }

    /// True for the extended-ALU commands that exist only when
    /// `DramConfig::extended_alu` is set (§VIII).
    pub fn is_extended(self) -> bool {
        matches!(self, CommandKind::PimMul | CommandKind::PimRsqrt)
    }

    /// True for commands that read a column out of the cells (tRTP applies
    /// before a following precharge).
    pub fn is_column_read(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::ScaledRead | CommandKind::QRegLoad)
    }

    /// True for commands that write a column into the cells (tWR applies
    /// before a following precharge).
    pub fn is_column_write(self) -> bool {
        matches!(self, CommandKind::Write | CommandKind::Writeback | CommandKind::QRegStore)
    }
}

/// A fully-specified DRAM command as issued by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Open `row` in `bank`.
    Activate {
        /// Target bank.
        bank: BankAddr,
        /// Row to open.
        row: u32,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Target bank.
        bank: BankAddr,
    },
    /// Close every open row of `rank`.
    PrechargeAll {
        /// Target rank.
        rank: u8,
    },
    /// Burst-read one column to the data bus.
    Read {
        /// Target bank.
        bank: BankAddr,
        /// Open row (for checking).
        row: u32,
        /// Burst column.
        col: u32,
    },
    /// Burst-write one column from the data bus.
    Write {
        /// Target bank.
        bank: BankAddr,
        /// Open row (for checking).
        row: u32,
        /// Burst column.
        col: u32,
    },
    /// All-bank refresh of one rank.
    Refresh {
        /// Target rank.
        rank: u8,
    },
    /// GradPIM: read one column into temporary register `dst`, scaling every
    /// element by scaler slot `scaler` (Table I "Scaled Read").
    ScaledRead {
        /// Target bank.
        bank: BankAddr,
        /// Open row.
        row: u32,
        /// Burst column.
        col: u32,
        /// Scaler slot id (0–3).
        scaler: u8,
        /// Destination temporary register (0 or 1).
        dst: u8,
    },
    /// GradPIM: write temporary register `src` into one column (Table I
    /// "Writeback").
    Writeback {
        /// Target bank.
        bank: BankAddr,
        /// Open row.
        row: u32,
        /// Burst column.
        col: u32,
        /// Source temporary register (0 or 1).
        src: u8,
    },
    /// GradPIM: load one column into the quantization register (Table I
    /// "Q. Reg", RD direction).
    QRegLoad {
        /// Target bank.
        bank: BankAddr,
        /// Open row.
        row: u32,
        /// Burst column.
        col: u32,
    },
    /// GradPIM: store the quantization register into one column (Table I
    /// "Q. Reg", WR direction).
    QRegStore {
        /// Target bank.
        bank: BankAddr,
        /// Open row.
        row: u32,
        /// Burst column.
        col: u32,
    },
    /// GradPIM: `Reg0 + Reg1 → Reg[dst]` (Table I "Add").
    PimAdd {
        /// Bank-group address of the PIM unit (bank ignored for
        /// per-bank-group placement).
        unit: BankAddr,
        /// Destination temporary register.
        dst: u8,
    },
    /// GradPIM: `Reg0 − Reg1 → Reg[dst]` (Table I "Sub").
    PimSub {
        /// Bank-group address of the PIM unit.
        unit: BankAddr,
        /// Destination temporary register.
        dst: u8,
    },
    /// GradPIM: quantize temporary register `src` into quarter `pos` of the
    /// quantization register (Table I "Quant").
    Quant {
        /// Bank-group address of the PIM unit.
        unit: BankAddr,
        /// Slice position within the quantization register.
        pos: u8,
        /// Source temporary register.
        src: u8,
    },
    /// GradPIM: dequantize quarter `pos` of the quantization register into
    /// temporary register `dst` (Table I "DeQuant").
    Dequant {
        /// Bank-group address of the PIM unit.
        unit: BankAddr,
        /// Slice position within the quantization register.
        pos: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// Extended ALU: `Reg0 × Reg1 → Reg[dst]` (§VIII).
    PimMul {
        /// Bank-group address of the PIM unit.
        unit: BankAddr,
        /// Destination temporary register.
        dst: u8,
    },
    /// Extended ALU: `1/√(Reg0 + ε) → Reg[dst]` with ε from the mode
    /// registers (§VIII).
    PimRsqrt {
        /// Bank-group address of the PIM unit.
        unit: BankAddr,
        /// Destination temporary register.
        dst: u8,
    },
}

impl Command {
    /// This command's kind.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Activate { .. } => CommandKind::Activate,
            Command::Precharge { .. } => CommandKind::Precharge,
            Command::PrechargeAll { .. } => CommandKind::PrechargeAll,
            Command::Read { .. } => CommandKind::Read,
            Command::Write { .. } => CommandKind::Write,
            Command::Refresh { .. } => CommandKind::Refresh,
            Command::ScaledRead { .. } => CommandKind::ScaledRead,
            Command::Writeback { .. } => CommandKind::Writeback,
            Command::QRegLoad { .. } => CommandKind::QRegLoad,
            Command::QRegStore { .. } => CommandKind::QRegStore,
            Command::PimAdd { .. } => CommandKind::PimAdd,
            Command::PimSub { .. } => CommandKind::PimSub,
            Command::Quant { .. } => CommandKind::Quant,
            Command::Dequant { .. } => CommandKind::Dequant,
            Command::PimMul { .. } => CommandKind::PimMul,
            Command::PimRsqrt { .. } => CommandKind::PimRsqrt,
        }
    }

    /// The bank (or unit) this command addresses, if any.
    pub fn bank(&self) -> Option<BankAddr> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::ScaledRead { bank, .. }
            | Command::Writeback { bank, .. }
            | Command::QRegLoad { bank, .. }
            | Command::QRegStore { bank, .. } => Some(bank),
            Command::PimAdd { unit, .. }
            | Command::PimSub { unit, .. }
            | Command::Quant { unit, .. }
            | Command::Dequant { unit, .. }
            | Command::PimMul { unit, .. }
            | Command::PimRsqrt { unit, .. } => Some(unit),
            Command::PrechargeAll { rank } | Command::Refresh { rank } => {
                Some(BankAddr { rank, bankgroup: 0, bank: 0 })
            }
        }
    }

    /// The rank this command addresses.
    pub fn rank(&self) -> u8 {
        self.bank().map(|b| b.rank).unwrap_or(0)
    }
}

/// A PIM micro-operation as produced by the `gradpim-core` kernel compiler:
/// a [`Command`]-shaped payload without the ACT/PRE plumbing, which the
/// memory controller generates on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimOp {
    /// See [`Command::ScaledRead`].
    ScaledRead {
        /// Target bank within the unit's bank group.
        bank: u8,
        /// Target row.
        row: u32,
        /// Target column.
        col: u32,
        /// Scaler slot (0–3).
        scaler: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// See [`Command::Writeback`].
    Writeback {
        /// Target bank within the unit's bank group.
        bank: u8,
        /// Target row.
        row: u32,
        /// Target column.
        col: u32,
        /// Source temporary register.
        src: u8,
    },
    /// See [`Command::QRegLoad`].
    QRegLoad {
        /// Target bank within the unit's bank group.
        bank: u8,
        /// Target row.
        row: u32,
        /// Target column.
        col: u32,
    },
    /// See [`Command::QRegStore`].
    QRegStore {
        /// Target bank within the unit's bank group.
        bank: u8,
        /// Target row.
        row: u32,
        /// Target column.
        col: u32,
    },
    /// See [`Command::PimAdd`].
    Add {
        /// Bank owning the unit (meaningful for per-bank placement only;
        /// 0 for per-bank-group units).
        bank: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// See [`Command::PimSub`].
    Sub {
        /// Bank owning the unit (per-bank placement only).
        bank: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// See [`Command::Quant`].
    Quant {
        /// Bank owning the unit (per-bank placement only).
        bank: u8,
        /// Quant-register slice position.
        pos: u8,
        /// Source temporary register.
        src: u8,
    },
    /// See [`Command::Dequant`].
    Dequant {
        /// Bank owning the unit (per-bank placement only).
        bank: u8,
        /// Quant-register slice position.
        pos: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// See [`Command::PimMul`] (extended ALU, §VIII).
    Mul {
        /// Bank owning the unit (per-bank placement only).
        bank: u8,
        /// Destination temporary register.
        dst: u8,
    },
    /// See [`Command::PimRsqrt`] (extended ALU, §VIII).
    Rsqrt {
        /// Bank owning the unit (per-bank placement only).
        bank: u8,
        /// Destination temporary register.
        dst: u8,
    },
}

impl PimOp {
    /// Lowers this op into a full [`Command`] for the unit at
    /// (`rank`, `bankgroup`).
    pub fn to_command(self, rank: u8, bankgroup: u8) -> Command {
        let at = |bank: u8| BankAddr { rank, bankgroup, bank };
        match self {
            PimOp::ScaledRead { bank, row, col, scaler, dst } => {
                Command::ScaledRead { bank: at(bank), row, col, scaler, dst }
            }
            PimOp::Writeback { bank, row, col, src } => {
                Command::Writeback { bank: at(bank), row, col, src }
            }
            PimOp::QRegLoad { bank, row, col } => Command::QRegLoad { bank: at(bank), row, col },
            PimOp::QRegStore { bank, row, col } => Command::QRegStore { bank: at(bank), row, col },
            PimOp::Add { bank, dst } => Command::PimAdd { unit: at(bank), dst },
            PimOp::Sub { bank, dst } => Command::PimSub { unit: at(bank), dst },
            PimOp::Quant { bank, pos, src } => Command::Quant { unit: at(bank), pos, src },
            PimOp::Dequant { bank, pos, dst } => Command::Dequant { unit: at(bank), pos, dst },
            PimOp::Mul { bank, dst } => Command::PimMul { unit: at(bank), dst },
            PimOp::Rsqrt { bank, dst } => Command::PimRsqrt { unit: at(bank), dst },
        }
    }

    /// The kind of the lowered command.
    pub fn kind(self) -> CommandKind {
        match self {
            PimOp::ScaledRead { .. } => CommandKind::ScaledRead,
            PimOp::Writeback { .. } => CommandKind::Writeback,
            PimOp::QRegLoad { .. } => CommandKind::QRegLoad,
            PimOp::QRegStore { .. } => CommandKind::QRegStore,
            PimOp::Add { .. } => CommandKind::PimAdd,
            PimOp::Sub { .. } => CommandKind::PimSub,
            PimOp::Quant { .. } => CommandKind::Quant,
            PimOp::Dequant { .. } => CommandKind::Dequant,
            PimOp::Mul { .. } => CommandKind::PimMul,
            PimOp::Rsqrt { .. } => CommandKind::PimRsqrt,
        }
    }

    /// The bank/row this op needs open, if it is a column op.
    pub fn row_target(self) -> Option<(u8, u32)> {
        match self {
            PimOp::ScaledRead { bank, row, .. }
            | PimOp::Writeback { bank, row, .. }
            | PimOp::QRegLoad { bank, row, .. }
            | PimOp::QRegStore { bank, row, .. } => Some((bank, row)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification_is_consistent() {
        for k in CommandKind::ALL {
            // Column reads/writes are disjoint.
            assert!(!(k.is_column_read() && k.is_column_write()), "{k:?}");
            // PIM column ops are PIM and column ops.
            if k.is_pim_column() {
                assert!(k.is_pim());
                assert!(k.is_column_read() || k.is_column_write());
            }
            // ALU ops never touch columns.
            if k.is_pim_alu() {
                assert!(k.is_pim());
                assert!(!k.is_column_read() && !k.is_column_write());
            }
        }
    }

    #[test]
    fn indices_are_dense() {
        for (i, k) in CommandKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn pim_op_lowering_preserves_addresses() {
        let op = PimOp::ScaledRead { bank: 2, row: 7, col: 13, scaler: 1, dst: 0 };
        match op.to_command(3, 1) {
            Command::ScaledRead { bank, row, col, scaler, dst } => {
                assert_eq!(bank, BankAddr { rank: 3, bankgroup: 1, bank: 2 });
                assert_eq!((row, col, scaler, dst), (7, 13, 1, 0));
            }
            other => panic!("wrong lowering: {other:?}"),
        }
        assert_eq!(op.kind(), CommandKind::ScaledRead);
        assert_eq!(op.row_target(), Some((2, 7)));
        assert_eq!(PimOp::Add { bank: 0, dst: 1 }.row_target(), None);
    }

    #[test]
    fn command_kind_round_trip() {
        let bank = BankAddr { rank: 0, bankgroup: 1, bank: 2 };
        let cmds = [
            Command::Activate { bank, row: 1 },
            Command::Precharge { bank },
            Command::PrechargeAll { rank: 0 },
            Command::Read { bank, row: 1, col: 2 },
            Command::Write { bank, row: 1, col: 2 },
            Command::Refresh { rank: 1 },
            Command::ScaledRead { bank, row: 1, col: 2, scaler: 0, dst: 0 },
            Command::Writeback { bank, row: 1, col: 2, src: 1 },
            Command::QRegLoad { bank, row: 1, col: 2 },
            Command::QRegStore { bank, row: 1, col: 2 },
            Command::PimAdd { unit: bank, dst: 0 },
            Command::PimSub { unit: bank, dst: 1 },
            Command::Quant { unit: bank, pos: 3, src: 0 },
            Command::Dequant { unit: bank, pos: 2, dst: 1 },
            Command::PimMul { unit: bank, dst: 0 },
            Command::PimRsqrt { unit: bank, dst: 1 },
        ];
        for (cmd, kind) in cmds.iter().zip(CommandKind::ALL) {
            assert_eq!(cmd.kind(), kind);
        }
    }
}
