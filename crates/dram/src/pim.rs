//! The GradPIM unit's register file, mode registers, and functional
//! datapath (§IV-A/B).
//!
//! Each unit holds two temporary registers and one quantization register,
//! all as wide as the global sense amplifiers (one 64 B burst per rank). The
//! *timing* of the unit lives in [`crate::timing`]; this module executes the
//! data transformations when functional storage is enabled.
//!
//! Numerics are shared with `gradpim-optim` so the in-DRAM datapath and the
//! reference optimizers agree bit-for-bit on quantization behaviour.

use gradpim_optim::quant::{f16_to_f32, f32_to_f16, Q8Scale};

use crate::storage::Storage;

/// Element type stored in DRAM arrays, as seen by the PIM datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    /// 32-bit IEEE float (master precision).
    F32,
    /// 16-bit IEEE float.
    F16,
    /// 8-bit integer with the power-of-two scale from the mode register.
    I8,
}

impl ElemKind {
    /// Bytes per element.
    pub const fn bytes(self) -> usize {
        match self {
            ElemKind::F32 => 4,
            ElemKind::F16 => 2,
            ElemKind::I8 => 1,
        }
    }
}

/// The MRW-programmable state of the GradPIM units (§IV-B: scaler values are
/// "programmed with MRW command in case the user needs different set of
/// values"; the quantization scale and element widths follow the same
/// mechanism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeRegisters {
    /// The four pinned scaler values (already approximated to ±(2ⁿ ± 2ᵐ) by
    /// the host; stored here as the exact resulting constants).
    pub scalers: [f32; 4],
    /// Power-of-two exponent for int8 quantization.
    pub q8_exponent: i32,
    /// Element kind of high-precision (master) arrays.
    pub high: ElemKind,
    /// Element kind of quantized arrays.
    pub low: ElemKind,
    /// Numerical-stability epsilon for the extended-ALU reciprocal square
    /// root (§VIII).
    pub eps: f32,
}

impl Default for ModeRegisters {
    fn default() -> Self {
        Self {
            scalers: [1.0; 4],
            q8_exponent: -7,
            high: ElemKind::F32,
            low: ElemKind::I8,
            eps: 1e-8,
        }
    }
}

impl ModeRegisters {
    /// Quantization ratio (how many low-precision columns pack into one
    /// register): `high.bytes() / low.bytes()`.
    ///
    /// # Panics
    ///
    /// Panics if `low` is wider than `high`.
    pub fn quant_ratio(&self) -> usize {
        assert!(self.high.bytes() >= self.low.bytes(), "low precision wider than high");
        self.high.bytes() / self.low.bytes()
    }

    /// Decodes a high-precision column into f32 lanes.
    pub fn decode_high(&self, bytes: &[u8]) -> Vec<f32> {
        match self.high {
            ElemKind::F32 => bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
            ElemKind::F16 => bytes
                .chunks_exact(2)
                .map(|c| f16_to_f32(u16::from_le_bytes([c[0], c[1]])))
                .collect(),
            ElemKind::I8 => bytes
                .iter()
                .map(|&b| (b as i8) as f32 * Q8Scale { exponent: self.q8_exponent }.factor())
                .collect(),
        }
    }

    /// Encodes f32 lanes into a high-precision column.
    pub fn encode_high(&self, vals: &[f32]) -> Vec<u8> {
        match self.high {
            ElemKind::F32 => vals.iter().flat_map(|v| v.to_le_bytes()).collect(),
            ElemKind::F16 => vals.iter().flat_map(|&v| f32_to_f16(v).to_le_bytes()).collect(),
            ElemKind::I8 => vals
                .iter()
                .map(|&v| {
                    gradpim_optim::quant::quantize_i8(v, Q8Scale { exponent: self.q8_exponent })
                        as u8
                })
                .collect(),
        }
    }

    /// Decodes a low-precision slice into f32 lanes.
    pub fn decode_low(&self, bytes: &[u8]) -> Vec<f32> {
        match self.low {
            ElemKind::I8 => bytes
                .iter()
                .map(|&b| {
                    gradpim_optim::quant::dequantize_i8(
                        b as i8,
                        Q8Scale { exponent: self.q8_exponent },
                    )
                })
                .collect(),
            ElemKind::F16 => bytes
                .chunks_exact(2)
                .map(|c| f16_to_f32(u16::from_le_bytes([c[0], c[1]])))
                .collect(),
            ElemKind::F32 => bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        }
    }

    /// Encodes f32 lanes into a low-precision slice.
    pub fn encode_low(&self, vals: &[f32]) -> Vec<u8> {
        match self.low {
            ElemKind::I8 => vals
                .iter()
                .map(|&v| {
                    gradpim_optim::quant::quantize_i8(v, Q8Scale { exponent: self.q8_exponent })
                        as u8
                })
                .collect(),
            ElemKind::F16 => vals.iter().flat_map(|&v| f32_to_f16(v).to_le_bytes()).collect(),
            ElemKind::F32 => vals.iter().flat_map(|v| v.to_le_bytes()).collect(),
        }
    }
}

/// One GradPIM unit's architectural register state.
#[derive(Debug, Clone)]
pub struct PimUnit {
    /// The two temporary registers (Reg0, Reg1).
    temp: [Vec<u8>; 2],
    /// The quantization register.
    quant: Vec<u8>,
}

impl PimUnit {
    /// A unit with zeroed registers of one burst width.
    pub fn new(burst_bytes: usize) -> Self {
        Self { temp: [vec![0; burst_bytes], vec![0; burst_bytes]], quant: vec![0; burst_bytes] }
    }

    /// Read access to temporary register `i` (tests/debug).
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn temp(&self, i: usize) -> &[u8] {
        &self.temp[i]
    }

    /// Read access to the quantization register (tests/debug).
    pub fn quant_reg(&self) -> &[u8] {
        &self.quant
    }

    /// Scaled read (§IV-B ①): bank column → temp register, each element
    /// multiplied by scaler slot `scaler`.
    #[allow(clippy::too_many_arguments)] // mirrors the command's full field list
    pub fn scaled_read(
        &mut self,
        storage: &Storage,
        mode: &ModeRegisters,
        bank_flat: usize,
        row: u32,
        col: u32,
        scaler: u8,
        dst: u8,
    ) {
        let raw = storage.read_col(bank_flat, row, col);
        let s = mode.scalers[scaler as usize & 3];
        let vals: Vec<f32> = mode.decode_high(&raw).into_iter().map(|v| v * s).collect();
        self.temp[dst as usize & 1] = mode.encode_high(&vals);
    }

    /// Writeback (§IV-B ③): temp register → bank column.
    pub fn writeback(&self, storage: &mut Storage, bank_flat: usize, row: u32, col: u32, src: u8) {
        storage.write_col(bank_flat, row, col, &self.temp[src as usize & 1]);
    }

    /// Q-register load: raw bank column → quantization register.
    pub fn qreg_load(&mut self, storage: &Storage, bank_flat: usize, row: u32, col: u32) {
        self.quant = storage.read_col(bank_flat, row, col);
    }

    /// Q-register store: quantization register → bank column.
    pub fn qreg_store(&self, storage: &mut Storage, bank_flat: usize, row: u32, col: u32) {
        storage.write_col(bank_flat, row, col, &self.quant);
    }

    /// Parallel add (§IV-B ②): `Reg0 + Reg1 → Reg[dst]`.
    pub fn add(&mut self, mode: &ModeRegisters, dst: u8) {
        let a = mode.decode_high(&self.temp[0]);
        let b = mode.decode_high(&self.temp[1]);
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        self.temp[dst as usize & 1] = mode.encode_high(&sum);
    }

    /// Parallel subtract: `Reg0 − Reg1 → Reg[dst]`.
    pub fn sub(&mut self, mode: &ModeRegisters, dst: u8) {
        let a = mode.decode_high(&self.temp[0]);
        let b = mode.decode_high(&self.temp[1]);
        let diff: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        self.temp[dst as usize & 1] = mode.encode_high(&diff);
    }

    /// Extended-ALU parallel multiply: `Reg0 × Reg1 → Reg[dst]` (§VIII).
    pub fn mul(&mut self, mode: &ModeRegisters, dst: u8) {
        let a = mode.decode_high(&self.temp[0]);
        let b = mode.decode_high(&self.temp[1]);
        let prod: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        self.temp[dst as usize & 1] = mode.encode_high(&prod);
    }

    /// Extended-ALU reciprocal square root:
    /// `1/√(max(Reg0, 0) + ε) → Reg[dst]` (§VIII).
    pub fn rsqrt(&mut self, mode: &ModeRegisters, dst: u8) {
        let a = mode.decode_high(&self.temp[0]);
        let r: Vec<f32> = a.iter().map(|x| 1.0 / (x.max(0.0) + mode.eps).sqrt()).collect();
        self.temp[dst as usize & 1] = mode.encode_high(&r);
    }

    /// Quantization (§IV-D3): temp register `src` → slice `pos` of the
    /// quantization register.
    ///
    /// # Panics
    ///
    /// Panics if `pos` exceeds the quantization ratio.
    pub fn quant_op(&mut self, mode: &ModeRegisters, pos: u8, src: u8) {
        let ratio = mode.quant_ratio();
        assert!((pos as usize) < ratio, "quant position {pos} out of range for ratio {ratio}");
        let vals = mode.decode_high(&self.temp[src as usize & 1]);
        let low = mode.encode_low(&vals);
        let slice_len = self.quant.len() / ratio;
        debug_assert_eq!(low.len(), slice_len);
        let off = pos as usize * slice_len;
        self.quant[off..off + slice_len].copy_from_slice(&low);
    }

    /// Dequantization (§IV-D1): slice `pos` of the quantization register →
    /// temp register `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` exceeds the quantization ratio.
    pub fn dequant_op(&mut self, mode: &ModeRegisters, pos: u8, dst: u8) {
        let ratio = mode.quant_ratio();
        assert!((pos as usize) < ratio, "dequant position {pos} out of range for ratio {ratio}");
        let slice_len = self.quant.len() / ratio;
        let off = pos as usize * slice_len;
        let vals = mode.decode_low(&self.quant[off..off + slice_len]);
        self.temp[dst as usize & 1] = mode.encode_high(&vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(bytes: &[u8]) -> Vec<f32> {
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
    }

    fn setup() -> (Storage, PimUnit, ModeRegisters) {
        let storage = Storage::new(128, 64);
        let unit = PimUnit::new(64);
        let mode = ModeRegisters::default();
        (storage, unit, mode)
    }

    #[test]
    fn scaled_read_applies_scaler() {
        let (mut storage, mut unit, mut mode) = setup();
        mode.scalers = [1.0, -0.5, 0.25, 2.0];
        let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        storage.write_col(0, 0, 0, &bytes);
        unit.scaled_read(&storage, &mode, 0, 0, 0, 1, 0);
        let got = f32s(unit.temp(0));
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as f32 * -0.5);
        }
    }

    #[test]
    fn add_and_sub_lanewise() {
        let (mut storage, mut unit, mode) = setup();
        let a: Vec<u8> = (0..16).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let b: Vec<u8> = (0..16).flat_map(|i| (10.0 * i as f32).to_le_bytes()).collect();
        storage.write_col(0, 0, 0, &a);
        storage.write_col(0, 0, 1, &b);
        unit.scaled_read(&storage, &mode, 0, 0, 0, 0, 0);
        unit.scaled_read(&storage, &mode, 0, 0, 1, 0, 1);
        unit.add(&mode, 0);
        let sums = f32s(unit.temp(0));
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, 11.0 * i as f32);
        }
        // temp1 still holds b; sub uses (current) reg0 − reg1.
        unit.sub(&mode, 1);
        let diffs = f32s(unit.temp(1));
        for (i, d) in diffs.iter().enumerate() {
            assert_eq!(*d, 11.0 * i as f32 - 10.0 * i as f32);
        }
    }

    #[test]
    fn writeback_round_trips() {
        let (mut storage, mut unit, mode) = setup();
        let a: Vec<u8> = (0..16).flat_map(|i| (0.5 * i as f32).to_le_bytes()).collect();
        storage.write_col(1, 3, 5, &a);
        unit.scaled_read(&storage, &mode, 1, 3, 5, 0, 0);
        unit.writeback(&mut storage, 2, 4, 6, 0);
        assert_eq!(storage.read_col(2, 4, 6), a);
    }

    #[test]
    fn quant_fills_quarters_8_32() {
        // 8/32 mixed precision: ratio 4, so four quant ops fill the
        // register (§IV-D3: "It fills a quarter of the quantization
        // register, so this is repeated four times").
        let (mut storage, mut unit, mut mode) = setup();
        mode.q8_exponent = -4; // step 1/16
        assert_eq!(mode.quant_ratio(), 4);
        for pos in 0..4u8 {
            let vals: Vec<f32> = (0..16).map(|i| (pos as f32) + i as f32 / 16.0).collect();
            let bytes = mode.encode_high(&vals);
            storage.write_col(0, 0, pos as u32, &bytes);
            unit.scaled_read(&storage, &mode, 0, 0, pos as u32, 0, 0);
            unit.quant_op(&mode, pos, 0);
        }
        // Dequantize each quarter back and compare within one quant step.
        for pos in 0..4u8 {
            unit.dequant_op(&mode, pos, 1);
            let got = f32s(unit.temp(1));
            for (i, v) in got.iter().enumerate() {
                let want = pos as f32 + i as f32 / 16.0;
                assert!(
                    (v - want).abs() <= (1.0 / 16.0) / 2.0 + 1e-6,
                    "pos {pos} lane {i}: {v} vs {want}"
                );
            }
        }
    }

    #[test]
    fn quant_ratio_two_for_16_32() {
        let mode = ModeRegisters { low: ElemKind::F16, ..Default::default() };
        assert_eq!(mode.quant_ratio(), 2);
        let mut unit = PimUnit::new(64);
        let vals: Vec<f32> = (0..16).map(|i| 1.5 * i as f32).collect();
        unit.temp[0] = mode.encode_high(&vals);
        unit.quant_op(&mode, 1, 0);
        unit.dequant_op(&mode, 1, 1);
        // f16 representable values survive exactly.
        assert_eq!(f32s(unit.temp(1)), vals);
    }

    #[test]
    #[should_panic(expected = "out of range for ratio")]
    fn quant_position_checked() {
        let mode = ModeRegisters { low: ElemKind::F16, ..Default::default() };
        let mut unit = PimUnit::new(64);
        unit.quant_op(&mode, 2, 0);
    }

    #[test]
    fn f16_master_precision_mode() {
        // 8/16 mix: high = F16 (32 lanes per 64 B column), low = I8.
        let mode = ModeRegisters {
            high: ElemKind::F16,
            low: ElemKind::I8,
            q8_exponent: -5,
            ..Default::default()
        };
        assert_eq!(mode.quant_ratio(), 2);
        let vals: Vec<f32> = (0..32).map(|i| i as f32 / 32.0).collect();
        let bytes = mode.encode_high(&vals);
        assert_eq!(bytes.len(), 64);
        let back = mode.decode_high(&bytes);
        for (v, b) in vals.iter().zip(&back) {
            assert!((v - b).abs() < 1e-3);
        }
    }
}
