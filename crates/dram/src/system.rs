//! The top-level memory system: address mapping + per-channel controllers.

use crate::address::{Address, AddressMapping};
use crate::command::PimOp;
use crate::config::DramConfig;
use crate::controller::{Completion, Controller, EnqueueError};
use crate::pim::ModeRegisters;
use crate::stats::Stats;

/// Errors surfaced by [`MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// A transaction queue is full; tick and retry.
    QueueFull,
    /// An extended-ALU op was issued to a device without
    /// `DramConfig::extended_alu` (§VIII).
    ExtendedAluDisabled,
    /// `drain` exceeded its cycle budget.
    DrainTimeout {
        /// Transactions still outstanding when the budget ran out.
        pending: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::QueueFull => write!(f, "transaction queue full"),
            MemError::ExtendedAluDisabled => {
                write!(f, "extended-ALU op on a device without extended_alu")
            }
            MemError::DrainTimeout { pending } => {
                write!(f, "drain timed out with {pending} transactions pending")
            }
        }
    }
}

impl std::error::Error for MemError {}

impl From<EnqueueError> for MemError {
    fn from(e: EnqueueError) -> Self {
        match e {
            EnqueueError::QueueFull => MemError::QueueFull,
            EnqueueError::ExtendedAluDisabled => MemError::ExtendedAluDisabled,
        }
    }
}

/// A complete DRAM memory system: one controller per channel, a shared
/// address mapping, and channel-striped transaction-id counters.
///
/// Transaction ids are **channel-striped**: the *n*-th transaction accepted
/// by channel *c* gets id `n * channels + c`. A channel's id stream is thus
/// a pure function of its own accept order — independent of how enqueues to
/// different channels interleave globally — which keeps ids reproducible
/// when a threaded driver (see the `gradpim-engine` crate) feeds or drains
/// channels concurrently. With one channel this degenerates to the familiar
/// sequential `0, 1, 2, …`.
///
/// # Example
///
/// ```
/// use gradpim_dram::{AddressMapping, DramConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(DramConfig::ddr4_2133(), AddressMapping::GradPim);
/// let id = mem.enqueue_read(0x1000).unwrap();
/// let cycles = mem.drain(10_000).unwrap();
/// assert!(cycles > 0);
/// let done = mem.take_completions();
/// assert_eq!(done[0].id, id);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    cfg: DramConfig,
    mapping: AddressMapping,
    ctrls: Vec<Controller>,
    /// Per-channel counts of accepted transactions (ids are striped:
    /// `count * channels + channel`).
    next_ids: Vec<u64>,
}

impl MemorySystem {
    /// Creates a performance-only memory system (no byte storage).
    pub fn new(cfg: DramConfig, mapping: AddressMapping) -> Self {
        Self::build(cfg, mapping, false)
    }

    /// Creates a functional memory system with byte-level storage and live
    /// PIM register files.
    pub fn with_storage(cfg: DramConfig, mapping: AddressMapping) -> Self {
        Self::build(cfg, mapping, true)
    }

    fn build(cfg: DramConfig, mapping: AddressMapping, functional: bool) -> Self {
        cfg.validate().expect("invalid DramConfig");
        let ctrls = (0..cfg.channels).map(|_| Controller::new(&cfg, functional)).collect();
        let next_ids = vec![0; cfg.channels];
        Self { cfg, mapping, ctrls, next_ids }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Current cycle count (channels tick in lockstep).
    pub fn cycles(&self) -> u64 {
        self.ctrls[0].cycles()
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.cycles() as f64 * self.cfg.cycle_ns()
    }

    /// Outstanding transactions across all channels.
    pub fn pending(&self) -> usize {
        self.ctrls.iter().map(|c| c.pending()).sum()
    }

    /// True when every channel has drained.
    pub fn is_drained(&self) -> bool {
        self.ctrls.iter().all(|c| c.is_drained())
    }

    /// The id `channel`'s next accepted transaction will get (channel
    /// striping: its accept count × channel count + channel index).
    fn peek_id(&self, channel: usize) -> u64 {
        self.next_ids[channel] * self.cfg.channels as u64 + channel as u64
    }

    /// Consumes the next transaction id for `channel`. Call only after the
    /// enqueue succeeded, so rejected attempts never burn ids (id assignment
    /// stays independent of how often a full queue was retried, and of how
    /// enqueues to *other* channels interleave).
    fn commit_id(&mut self, channel: usize) -> u64 {
        let id = self.peek_id(channel);
        self.next_ids[channel] += 1;
        id
    }

    /// Enqueues an external burst read of `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::QueueFull`] when the target bank queue is full.
    pub fn enqueue_read(&mut self, addr: u64) -> Result<u64, MemError> {
        let loc = self.mapping.decode(addr, &self.cfg);
        let id = self.peek_id(loc.channel);
        self.ctrls[loc.channel].enqueue_read(id, loc)?;
        Ok(self.commit_id(loc.channel))
    }

    /// Enqueues an external burst write of `addr`, optionally with data.
    ///
    /// # Errors
    ///
    /// [`MemError::QueueFull`] when the target bank queue is full.
    pub fn enqueue_write(&mut self, addr: u64, data: Option<Vec<u8>>) -> Result<u64, MemError> {
        let loc = self.mapping.decode(addr, &self.cfg);
        let id = self.peek_id(loc.channel);
        self.ctrls[loc.channel].enqueue_write(id, loc, data)?;
        Ok(self.commit_id(loc.channel))
    }

    /// Enqueues one GradPIM micro-op for the unit at
    /// (`channel`, `rank`, `bankgroup`).
    ///
    /// # Errors
    ///
    /// [`MemError::QueueFull`] when the unit's queue is full.
    pub fn enqueue_pim(
        &mut self,
        channel: usize,
        rank: u8,
        bankgroup: u8,
        op: PimOp,
    ) -> Result<u64, MemError> {
        let id = self.peek_id(channel);
        self.ctrls[channel].enqueue_pim(id, rank, bankgroup, op)?;
        Ok(self.commit_id(channel))
    }

    /// Advances all channels one memory-clock cycle.
    pub fn tick(&mut self) {
        for c in &mut self.ctrls {
            c.tick();
        }
    }

    /// The earliest cycle at which anything observable can change on any
    /// channel (see [`Controller::next_event_cycle`]). Cycles strictly
    /// before it are provably no-op ticks.
    pub fn next_event_cycle(&self) -> u64 {
        self.ctrls.iter().map(Controller::next_event_cycle).min().expect("at least one channel")
    }

    /// Fast-forwards every channel to `cycle` (keeping them in lockstep),
    /// bulk-accounting the skipped cycles. Must not pass
    /// [`MemorySystem::next_event_cycle`].
    pub fn advance_to(&mut self, cycle: u64) {
        for c in &mut self.ctrls {
            c.advance_to(cycle);
        }
    }

    /// Skips ahead to the next event and ticks once there: observably
    /// equivalent to calling [`MemorySystem::tick`] repeatedly up to and
    /// including the first cycle where anything can happen, at O(1) ticks.
    pub fn tick_until_event(&mut self) {
        let e = self.next_event_cycle();
        self.advance_to(e);
        self.tick();
    }

    /// Runs to exactly `cycle` (no overshoot), fast-forwarding over dead
    /// spans and ticking at events — observably identical to calling
    /// [`MemorySystem::tick`] once per cycle until `cycle` is reached.
    pub fn run_until(&mut self, cycle: u64) {
        while self.cycles() < cycle {
            self.advance_to(self.next_event_cycle().min(cycle));
            if self.cycles() < cycle {
                self.tick();
            }
        }
    }

    /// Runs until drained or `max_cycles` have elapsed, fast-forwarding
    /// over cycles where nothing can issue. Produces stats, completions and
    /// traces identical to [`MemorySystem::drain_reference`].
    ///
    /// # Errors
    ///
    /// [`MemError::DrainTimeout`] if work remains after `max_cycles`.
    pub fn drain(&mut self, max_cycles: u64) -> Result<u64, MemError> {
        let start = self.cycles();
        let deadline = start.saturating_add(max_cycles);
        while !self.is_drained() {
            if self.cycles() >= deadline {
                return Err(MemError::DrainTimeout { pending: self.pending() });
            }
            self.advance_to(self.next_event_cycle().min(deadline));
            if self.is_drained() {
                break;
            }
            if self.cycles() < deadline {
                self.tick();
            }
        }
        Ok(self.cycles() - start)
    }

    /// Per-cycle reference implementation of [`MemorySystem::drain`]: ticks
    /// every cycle. Kept for differential testing of the event-driven core
    /// (and selectable at phase level via `GRADPIM_REFERENCE=1`).
    ///
    /// # Errors
    ///
    /// [`MemError::DrainTimeout`] if work remains after `max_cycles`.
    pub fn drain_reference(&mut self, max_cycles: u64) -> Result<u64, MemError> {
        let start = self.cycles();
        while !self.is_drained() {
            if self.cycles() - start >= max_cycles {
                return Err(MemError::DrainTimeout { pending: self.pending() });
            }
            self.tick();
        }
        Ok(self.cycles() - start)
    }

    /// Merged statistics across channels (`Stats::channels` reports the
    /// channel count so bus utilizations stay per-channel-normalized). Uses
    /// the order-insensitive [`Stats::merge_all`], so the result is
    /// bit-identical no matter how (or on which threads) the channels were
    /// advanced.
    pub fn stats(&self) -> Stats {
        Stats::merge_all(self.ctrls.iter().map(Controller::stats))
    }

    /// The per-channel controllers, in channel order.
    pub fn controllers(&self) -> &[Controller] {
        &self.ctrls
    }

    /// Mutable access to the per-channel controllers, in channel order.
    ///
    /// This is the escape hatch parallel drivers (the `gradpim-engine`
    /// crate) use to advance channels on worker threads: channels share no
    /// state, so any schedule that ticks each controller at (at least) its
    /// own event cycles and leaves all channels at a common final cycle is
    /// observably identical to the lockstep [`MemorySystem::tick`] /
    /// [`MemorySystem::drain`] path. Callers must restore lockstep (equal
    /// `Controller::cycles`) before using the system-level stepping API
    /// again.
    pub fn controllers_mut(&mut self) -> &mut [Controller] {
        &mut self.ctrls
    }

    /// Drains completions from all channels (ids are globally unique).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        for c in &mut self.ctrls {
            out.extend(c.take_completions());
        }
        out
    }

    /// Starts recording issued commands on every channel (see
    /// [`crate::trace::verify_trace`]).
    pub fn enable_trace(&mut self) {
        for c in &mut self.ctrls {
            c.enable_trace();
        }
    }

    /// Takes the per-channel command traces (channels have independent
    /// buses, so verification is per channel).
    pub fn take_traces(&mut self) -> Vec<Vec<crate::trace::TraceEntry>> {
        self.ctrls.iter_mut().map(|c| c.take_trace()).collect()
    }

    /// Programs the PIM mode registers on every channel (MRW broadcast).
    pub fn set_mode_registers(&mut self, mode: ModeRegisters) {
        for c in &mut self.ctrls {
            c.set_mode(mode);
        }
    }

    /// Backdoor write: stores `data` at linear address `addr` through the
    /// address mapping, bypassing timing. Functional mode only.
    ///
    /// # Panics
    ///
    /// Panics if storage is disabled or `addr`/`data` are not burst-aligned.
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        let burst = self.cfg.burst_bytes;
        assert_eq!(addr % burst as u64, 0, "poke address must be burst-aligned");
        assert_eq!(data.len() % burst, 0, "poke data must be burst-aligned");
        for (i, chunk) in data.chunks(burst).enumerate() {
            let a = addr + (i * burst) as u64;
            let loc = self.mapping.decode(a, &self.cfg);
            let fb = loc.flat_bank(&self.cfg);
            let st = self.ctrls[loc.channel]
                .storage_mut()
                .expect("poke requires functional storage (MemorySystem::with_storage)");
            st.write_col(fb, loc.row as u32, loc.column as u32, chunk);
        }
    }

    /// Backdoor read of `len` bytes from linear address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if storage is disabled or `addr`/`len` are not burst-aligned.
    pub fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let burst = self.cfg.burst_bytes;
        assert_eq!(addr % burst as u64, 0, "peek address must be burst-aligned");
        assert_eq!(len % burst, 0, "peek length must be burst-aligned");
        let mut out = Vec::with_capacity(len);
        for i in 0..len / burst {
            let a = addr + (i * burst) as u64;
            let loc = self.mapping.decode(a, &self.cfg);
            let fb = loc.flat_bank(&self.cfg);
            let st = self.ctrls[loc.channel]
                .storage()
                .expect("peek requires functional storage (MemorySystem::with_storage)");
            out.extend_from_slice(&st.read_col(fb, loc.row as u32, loc.column as u32));
        }
        out
    }

    /// Decodes a linear address (convenience re-export of the mapping).
    pub fn decode(&self, addr: u64) -> Address {
        self.mapping.decode(addr, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandKind;

    #[test]
    fn read_write_round_trip_through_timing() {
        let mut mem = MemorySystem::with_storage(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        let data: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5a).collect();
        mem.enqueue_write(4096, Some(data.clone())).unwrap();
        let rid = mem.enqueue_read(4096).unwrap();
        mem.drain(10_000).unwrap();
        let comps = mem.take_completions();
        let read = comps.iter().find(|c| c.id == rid).unwrap();
        assert_eq!(read.data.as_deref(), Some(&data[..]));
    }

    #[test]
    fn poke_peek_round_trip() {
        let mut mem = MemorySystem::with_storage(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        mem.poke(1 << 20, &data);
        assert_eq!(mem.peek(1 << 20, 256), data);
    }

    #[test]
    fn poke_then_timed_read_sees_data() {
        let mut mem = MemorySystem::with_storage(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        let data = vec![7u8; 64];
        mem.poke(0, &data);
        let rid = mem.enqueue_read(0).unwrap();
        mem.drain(10_000).unwrap();
        let comps = mem.take_completions();
        assert_eq!(comps.iter().find(|c| c.id == rid).unwrap().data.as_deref(), Some(&data[..]));
    }

    #[test]
    fn streaming_bandwidth_approaches_peak() {
        // 1 MiB of sequential reads should land near the 17.1 GB/s external
        // ceiling (§VI-B's baseline observation, ~15 GB/s with refresh).
        let cfg = DramConfig::ddr4_2133();
        let mut mem = MemorySystem::new(cfg.clone(), AddressMapping::GradPim);
        let bursts = (1 << 20) / 64;
        let mut enqueued = 0u64;
        while enqueued < bursts {
            match mem.enqueue_read(enqueued * 64) {
                Ok(_) => enqueued += 1,
                Err(MemError::QueueFull) => mem.tick(),
                Err(e) => panic!("{e}"),
            }
        }
        mem.drain(10_000_000).unwrap();
        let st = mem.stats();
        let bw = st.external_bw(&cfg) / 1e9;
        assert!(bw > 13.0, "streaming read bandwidth {bw} GB/s");
        assert!(bw <= cfg.peak_external_bw() / 1e9 + 0.1);
    }

    #[test]
    fn event_drain_matches_reference_drain() {
        let mut cfg = DramConfig::ddr4_2133();
        cfg.channels = 2;
        let build = |cfg: &DramConfig| {
            let mut mem = MemorySystem::new(cfg.clone(), AddressMapping::GradPim);
            mem.enable_trace();
            let push = |mem: &mut MemorySystem, write: bool, a: u64| loop {
                let r = if write {
                    mem.enqueue_write(a, None).map(drop)
                } else {
                    mem.enqueue_read(a).map(drop)
                };
                match r {
                    Ok(()) => break,
                    Err(MemError::QueueFull) => mem.tick(),
                    Err(e) => panic!("{e}"),
                }
            };
            for i in 0..96u64 {
                push(&mut mem, false, i * 64);
            }
            for i in 0..32u64 {
                push(&mut mem, true, (1 << 22) + i * 64);
            }
            mem.enqueue_pim(
                0,
                0,
                1,
                PimOp::ScaledRead { bank: 0, row: 0, col: 0, scaler: 0, dst: 0 },
            )
            .unwrap();
            mem
        };
        let mut fast = build(&cfg);
        let mut refr = build(&cfg);
        let fc = fast.drain(1_000_000).unwrap();
        let rc = refr.drain_reference(1_000_000).unwrap();
        assert_eq!(fc, rc, "drain cycle counts diverge");
        assert_eq!(fast.take_traces(), refr.take_traces());
        assert_eq!(fast.take_completions(), refr.take_completions());
        assert_eq!(fast.stats(), refr.stats());
    }

    #[test]
    fn everything_threaded_drivers_need_is_send() {
        fn is_send<T: Send>() {}
        is_send::<Controller>();
        is_send::<MemorySystem>();
        is_send::<Stats>();
        is_send::<Completion>();
        is_send::<MemError>();
    }

    #[test]
    fn channel_striped_ids_are_interleaving_invariant() {
        // The k-th transaction accepted by a channel gets the same id no
        // matter how enqueues to different channels interleave globally —
        // the property a threaded driver needs for reproducible ids.
        let mut cfg = DramConfig::ddr4_2133();
        cfg.channels = 2;
        // 8 bursts alternating between the two channels.
        let addrs: Vec<u64> = (0..8usize)
            .map(|i| {
                let loc = Address {
                    channel: i % 2,
                    rank: 0,
                    bankgroup: (i / 2) % cfg.bankgroups,
                    bank: 0,
                    row: 0,
                    column: i % cfg.columns,
                };
                AddressMapping::GradPim.encode(loc, &cfg)
            })
            .collect();
        let mut round_robin = MemorySystem::new(cfg.clone(), AddressMapping::GradPim);
        let ids_rr: Vec<(usize, u64)> = addrs
            .iter()
            .map(|&a| (round_robin.decode(a).channel, round_robin.enqueue_read(a).unwrap()))
            .collect();
        // Same transactions, all of channel 0 first, then all of channel 1.
        let mut grouped = MemorySystem::new(cfg.clone(), AddressMapping::GradPim);
        let mut sorted = addrs.clone();
        sorted.sort_by_key(|&a| grouped.decode(a).channel);
        let ids_grouped: Vec<(usize, u64)> = sorted
            .iter()
            .map(|&a| (grouped.decode(a).channel, grouped.enqueue_read(a).unwrap()))
            .collect();
        // Per-channel id streams are identical across the two interleavings.
        for ch in 0..cfg.channels {
            let stream = |ids: &[(usize, u64)]| -> Vec<u64> {
                ids.iter().filter(|(c, _)| *c == ch).map(|(_, id)| *id).collect()
            };
            assert_eq!(stream(&ids_rr), stream(&ids_grouped), "channel {ch} id stream diverges");
        }
        // Ids are globally unique and stripe by channel parity.
        let mut all: Vec<u64> = ids_rr.iter().map(|(_, id)| *id).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), addrs.len());
        for (ch, id) in &ids_rr {
            assert_eq!(*id as usize % cfg.channels, *ch);
        }
    }

    #[test]
    fn single_channel_ids_stay_sequential() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        let ids: Vec<u64> = (0..5u64).map(|i| mem.enqueue_read(i * 64).unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn merged_stats_report_channel_count() {
        let mut cfg = DramConfig::ddr4_2133();
        cfg.channels = 2;
        let mut mem = MemorySystem::new(cfg, AddressMapping::GradPim);
        for i in 0..64u64 {
            mem.enqueue_read(i * 64).unwrap();
        }
        mem.drain(1_000_000).unwrap();
        let st = mem.stats();
        assert_eq!(st.channels, 2);
        // Direct issue mode: per-channel command-bus utilization can never
        // exceed one command per tCK even when channels are merged.
        assert!(st.command_bus_utilization() <= 1.0, "util {}", st.command_bus_utilization());
    }

    #[test]
    fn tick_until_event_is_equivalent_to_many_ticks() {
        // Idle system: one tick_until_event must land exactly where the
        // per-cycle reference first does something (the first refresh
        // window, here), with identical stats.
        let cfg = DramConfig::ddr4_2133();
        let mut fast = MemorySystem::new(cfg.clone(), AddressMapping::GradPim);
        let mut refr = MemorySystem::new(cfg, AddressMapping::GradPim);
        for _ in 0..3 {
            fast.tick_until_event();
        }
        while refr.cycles() < fast.cycles() {
            refr.tick();
        }
        assert_eq!(fast.stats(), refr.stats());
    }

    #[test]
    fn drain_timeout_reports_pending() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        mem.enqueue_read(0).unwrap();
        match mem.drain(1) {
            Err(MemError::DrainTimeout { pending }) => assert_eq!(pending, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn pim_ops_route_to_correct_channel_unit() {
        let mut mem = MemorySystem::with_storage(DramConfig::ddr4_2133(), AddressMapping::GradPim);
        // Write f32 data via backdoor into (rank 0, bg 2, bank 0, row 0).
        let vals: Vec<u8> = (0..16).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let loc = Address { channel: 0, rank: 0, bankgroup: 2, bank: 0, row: 0, column: 0 };
        let addr = AddressMapping::GradPim.encode(loc, mem.config());
        mem.poke(addr, &vals);
        // scaled-read → writeback into bank 1 same group.
        mem.enqueue_pim(0, 0, 2, PimOp::ScaledRead { bank: 0, row: 0, col: 0, scaler: 0, dst: 0 })
            .unwrap();
        mem.enqueue_pim(0, 0, 2, PimOp::Writeback { bank: 1, row: 0, col: 0, src: 0 }).unwrap();
        mem.drain(10_000).unwrap();
        let dst = Address { channel: 0, rank: 0, bankgroup: 2, bank: 1, row: 0, column: 0 };
        let dst_addr = AddressMapping::GradPim.encode(dst, mem.config());
        assert_eq!(mem.peek(dst_addr, 64), vals);
        let st = mem.stats();
        assert_eq!(st.count(CommandKind::ScaledRead), 1);
        assert_eq!(st.count(CommandKind::Writeback), 1);
    }
}
