//! Command tracing and independent protocol verification.
//!
//! The controller checks timing at issue via debug assertions; this module
//! provides *release-mode* verification: record the issued command stream
//! and replay it through a fresh [`TimingState`] + bank state, flagging any
//! command that violates a JEDEC/GradPIM constraint or targets a
//! closed/mismatched row. Useful as a regression oracle for controller
//! changes and for inspecting protocol behaviour in tests.

use crate::bank::BankState;
use crate::command::Command;
use crate::config::DramConfig;
use crate::timing::TimingState;

/// One issued command with its issue cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Memory-clock cycle of issue.
    pub cycle: u64,
    /// The command.
    pub cmd: Command,
}

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolViolation {
    /// Issued before the timing engine allows.
    TimingViolation {
        /// Index into the trace.
        index: usize,
        /// The offending entry.
        entry: TraceEntry,
        /// Earliest legal cycle.
        earliest: u64,
    },
    /// Column command to a bank whose open row does not match (or is
    /// closed).
    RowMismatch {
        /// Index into the trace.
        index: usize,
        /// The offending entry.
        entry: TraceEntry,
        /// What the bank actually had open.
        open_row: Option<u32>,
    },
    /// Activate to a bank that already has an open row.
    DoubleActivate {
        /// Index into the trace.
        index: usize,
        /// The offending entry.
        entry: TraceEntry,
    },
    /// Commands out of cycle order.
    NonMonotonic {
        /// Index into the trace.
        index: usize,
    },
    /// Extended-ALU command on a device without `extended_alu`.
    ExtendedAluDisabled {
        /// Index into the trace.
        index: usize,
        /// The offending entry.
        entry: TraceEntry,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::TimingViolation { index, entry, earliest } => write!(
                f,
                "trace[{index}]: {:?} at cycle {} before earliest {}",
                entry.cmd, entry.cycle, earliest
            ),
            ProtocolViolation::RowMismatch { index, entry, open_row } => write!(
                f,
                "trace[{index}]: {:?} at cycle {} against open row {:?}",
                entry.cmd, entry.cycle, open_row
            ),
            ProtocolViolation::DoubleActivate { index, entry } => {
                write!(
                    f,
                    "trace[{index}]: double activate {:?} at cycle {}",
                    entry.cmd, entry.cycle
                )
            }
            ProtocolViolation::NonMonotonic { index } => {
                write!(f, "trace[{index}]: cycle numbers go backwards")
            }
            ProtocolViolation::ExtendedAluDisabled { index, entry } => {
                write!(f, "trace[{index}]: extended-ALU {:?} on a base device", entry.cmd)
            }
        }
    }
}

impl std::error::Error for ProtocolViolation {}

fn flat_bank(cfg: &DramConfig, cmd: &Command) -> Option<usize> {
    cmd.bank().map(|b| {
        (b.rank as usize * cfg.bankgroups + b.bankgroup as usize) * cfg.banks_per_group
            + b.bank as usize
    })
}

/// Replays `trace` against a fresh timing/bank model and returns the first
/// violation, if any.
///
/// The replay applies the same rules the controller must obey:
/// monotonically non-decreasing cycles, [`TimingState::earliest`] for every
/// command, rows opened before column access and matching the accessed row,
/// no double activation, and the extended-ALU gate.
pub fn verify_trace(cfg: &DramConfig, trace: &[TraceEntry]) -> Result<(), ProtocolViolation> {
    let mut timing = TimingState::new(cfg);
    let mut banks = vec![BankState::new(); cfg.ranks * cfg.banks_per_rank()];
    let mut last_cycle = 0u64;
    for (index, entry) in trace.iter().enumerate() {
        if entry.cycle < last_cycle {
            return Err(ProtocolViolation::NonMonotonic { index });
        }
        last_cycle = entry.cycle;
        let kind = entry.cmd.kind();
        if kind.is_extended() && !cfg.extended_alu {
            return Err(ProtocolViolation::ExtendedAluDisabled { index, entry: *entry });
        }
        let earliest = timing.earliest(&entry.cmd);
        if entry.cycle < earliest {
            return Err(ProtocolViolation::TimingViolation { index, entry: *entry, earliest });
        }
        // Row legality.
        let row_of = |cmd: &Command| -> Option<u32> {
            match *cmd {
                Command::Read { row, .. }
                | Command::Write { row, .. }
                | Command::ScaledRead { row, .. }
                | Command::Writeback { row, .. }
                | Command::QRegLoad { row, .. }
                | Command::QRegStore { row, .. } => Some(row),
                _ => None,
            }
        };
        match entry.cmd {
            Command::Activate { row, .. } => {
                let fb = flat_bank(cfg, &entry.cmd).expect("activate has a bank");
                if banks[fb].open_row().is_some() {
                    return Err(ProtocolViolation::DoubleActivate { index, entry: *entry });
                }
                banks[fb].activate(row);
            }
            Command::Precharge { .. } => {
                let fb = flat_bank(cfg, &entry.cmd).expect("precharge has a bank");
                banks[fb].precharge();
            }
            Command::PrechargeAll { rank } => {
                let base = rank as usize * cfg.banks_per_rank();
                for b in 0..cfg.banks_per_rank() {
                    banks[base + b].precharge();
                }
            }
            Command::Refresh { rank } => {
                // All banks must be precharged.
                let base = rank as usize * cfg.banks_per_rank();
                for b in 0..cfg.banks_per_rank() {
                    if banks[base + b].open_row().is_some() {
                        return Err(ProtocolViolation::RowMismatch {
                            index,
                            entry: *entry,
                            open_row: banks[base + b].open_row(),
                        });
                    }
                }
            }
            _ => {
                if let Some(row) = row_of(&entry.cmd) {
                    let fb = flat_bank(cfg, &entry.cmd).expect("column command has a bank");
                    if !banks[fb].is_hit(row) {
                        return Err(ProtocolViolation::RowMismatch {
                            index,
                            entry: *entry,
                            open_row: banks[fb].open_row(),
                        });
                    }
                }
            }
        }
        timing.issue(&entry.cmd, entry.cycle);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankAddr;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    fn bank0() -> BankAddr {
        BankAddr { rank: 0, bankgroup: 0, bank: 0 }
    }

    #[test]
    fn legal_sequence_passes() {
        let c = cfg();
        let trace = vec![
            TraceEntry { cycle: 0, cmd: Command::Activate { bank: bank0(), row: 5 } },
            TraceEntry { cycle: c.trcd, cmd: Command::Read { bank: bank0(), row: 5, col: 0 } },
            TraceEntry {
                cycle: c.trcd + c.tccd_l,
                cmd: Command::Read { bank: bank0(), row: 5, col: 1 },
            },
        ];
        assert_eq!(verify_trace(&c, &trace), Ok(()));
    }

    #[test]
    fn early_read_is_flagged() {
        let c = cfg();
        let trace = vec![
            TraceEntry { cycle: 0, cmd: Command::Activate { bank: bank0(), row: 5 } },
            TraceEntry { cycle: c.trcd - 1, cmd: Command::Read { bank: bank0(), row: 5, col: 0 } },
        ];
        assert!(matches!(
            verify_trace(&c, &trace),
            Err(ProtocolViolation::TimingViolation { index: 1, .. })
        ));
    }

    #[test]
    fn wrong_row_is_flagged() {
        let c = cfg();
        let trace = vec![
            TraceEntry { cycle: 0, cmd: Command::Activate { bank: bank0(), row: 5 } },
            TraceEntry { cycle: c.trcd, cmd: Command::Read { bank: bank0(), row: 6, col: 0 } },
        ];
        assert!(matches!(
            verify_trace(&c, &trace),
            Err(ProtocolViolation::RowMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn double_activate_is_flagged() {
        let c = cfg();
        let trace = vec![
            TraceEntry { cycle: 0, cmd: Command::Activate { bank: bank0(), row: 5 } },
            TraceEntry { cycle: 100, cmd: Command::Activate { bank: bank0(), row: 6 } },
        ];
        assert!(matches!(
            verify_trace(&c, &trace),
            Err(ProtocolViolation::DoubleActivate { index: 1, .. })
        ));
    }

    #[test]
    fn non_monotonic_is_flagged() {
        let c = cfg();
        let trace = vec![
            TraceEntry { cycle: 10, cmd: Command::Activate { bank: bank0(), row: 5 } },
            TraceEntry { cycle: 9, cmd: Command::Precharge { bank: bank0() } },
        ];
        assert!(matches!(
            verify_trace(&c, &trace),
            Err(ProtocolViolation::NonMonotonic { index: 1 })
        ));
    }

    #[test]
    fn extended_alu_gate_is_checked() {
        let c = cfg();
        let trace = vec![TraceEntry { cycle: 0, cmd: Command::PimMul { unit: bank0(), dst: 0 } }];
        assert!(matches!(
            verify_trace(&c, &trace),
            Err(ProtocolViolation::ExtendedAluDisabled { index: 0, .. })
        ));
        let mut ext = cfg();
        ext.extended_alu = true;
        assert_eq!(verify_trace(&ext, &trace), Ok(()));
    }
}
