//! DRAM device/system configuration and the paper's Table II presets.
//!
//! All timing parameters are stored in memory-clock cycles (1 cycle = `tck_ps`
//! picoseconds). The default preset reproduces Table II of the paper
//! (DDR4-2133, 4 ranks, 4 bank groups × 4 banks); JEDEC parameters the table
//! omits are filled in from JESD79-4 speed-bin values for an x8 8 Gb device.

/// How commands are delivered to the DRAM devices (§V-C, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandIssueMode {
    /// Direct-attach: one command/address bus per channel, one command per
    /// tCK (Fig. 8(a), GradPIM-Direct). This is the bottleneck identified in
    /// Fig. 11 (top).
    Direct,
    /// Buffered DIMMs: a buffer device per rank receives compact high-level
    /// commands over a serial link and expands them locally, so each rank
    /// sustains one DRAM command per tCK (Fig. 8(b), GradPIM-Buffered).
    PerRankBuffered,
}

/// Where the data bus terminates (used to model TensorDIMM-style designs
/// whose buffer chips talk to their local rank without crossing the host
/// channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataBusScope {
    /// One data bus shared by all ranks of the channel (standard DDR4).
    Channel,
    /// Each rank has a private data path to its buffer device; the host
    /// link is only used for host-visible transfers.
    PerRank,
}

/// Where GradPIM units are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimPlacement {
    /// One unit per bank group, at the bank-group I/O gating (the paper's
    /// design, §IV-A).
    PerBankGroup,
    /// One unit per bank (the AoS-PB ablation of §VI-B): higher internal
    /// bandwidth, but only one open row per bank, which forces the
    /// array-of-structures placement.
    PerBank,
}

/// Complete configuration of one DRAM memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Human-readable name (e.g. "DDR4-2133").
    pub name: String,

    // --- organization ---
    /// Independent channels (each with its own controller and buses).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bankgroups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// 64-byte burst positions per row (row size / 64 B).
    pub columns: usize,
    /// Bytes delivered by one burst (BL8 × 64-bit bus = 64 B).
    pub burst_bytes: usize,

    // --- clocks ---
    /// Memory-clock period in picoseconds (DDR4-2133: 938 ps ≈ the paper's
    /// 0.94 ns).
    pub tck_ps: u64,

    // --- timing, in cycles (Table II + JESD79-4) ---
    /// CAS latency.
    pub tcl: u64,
    /// RAS-to-CAS delay.
    pub trcd: u64,
    /// Row precharge time.
    pub trp: u64,
    /// Row active time.
    pub tras: u64,
    /// Row cycle time (tRAS + tRP).
    pub trc: u64,
    /// Column-to-column, same bank group.
    pub tccd_l: u64,
    /// Column-to-column, different bank group.
    pub tccd_s: u64,
    /// Activate-to-activate, same bank group.
    pub trrd_l: u64,
    /// Activate-to-activate, different bank group.
    pub trrd_s: u64,
    /// Four-activate window (per rank).
    pub tfaw: u64,
    /// Write recovery time.
    pub twr: u64,
    /// Write-to-read turnaround, same bank group.
    pub twtr_l: u64,
    /// Write-to-read turnaround, different bank group.
    pub twtr_s: u64,
    /// Read-to-precharge.
    pub trtp: u64,
    /// CAS write latency.
    pub tcwl: u64,
    /// Burst duration on the data bus.
    pub tburst: u64,
    /// Average refresh interval.
    pub trefi: u64,
    /// Refresh cycle time (all-bank).
    pub trfc: u64,
    /// Rank-to-rank switch penalty on the shared data bus.
    pub trtrs: u64,
    /// Worst-case GradPIM parallel-ALU occupancy (the paper's new timing
    /// parameter, §IV-C; Table II: 5 cycles).
    pub tpim: u64,
    /// Power-down exit latency (JEDEC tXP).
    pub txp: u64,
    /// Idle rank-cycles before the controller enters precharge power-down
    /// (uses the Table II IDD2P current). `u64::MAX` disables power-down.
    pub powerdown_idle: u64,

    // --- currents (mA) and supply (V), Table II ---
    /// Active-precharge current (one bank ACT/PRE cycling).
    pub idd0: f64,
    /// Precharge power-down current.
    pub idd2p: f64,
    /// Precharge standby current.
    pub idd2n: f64,
    /// Active power-down current.
    pub idd3p: f64,
    /// Active standby current.
    pub idd3n: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Partial (bank-group-internal) access current — the fine-grained DRAM
    /// access model of O'Connor et al. used by the paper for PIM-local
    /// transfers.
    pub iddpre: f64,
    /// Supply voltage.
    pub vdd: f64,
    /// Off-chip I/O + termination energy per transferred bit (pJ/bit), used
    /// for external reads/writes only (Micron power-calculator style).
    pub io_pj_per_bit: f64,

    // --- system-level switches ---
    /// Command delivery model.
    pub issue_mode: CommandIssueMode,
    /// Data-bus topology.
    pub data_bus: DataBusScope,
    /// GradPIM unit placement.
    pub pim_placement: PimPlacement,
    /// Transaction-queue capacity per channel.
    pub queue_depth: usize,
    /// Enables the §VIII extended ALU (parallel multiply + reciprocal
    /// square root), required for Adam/AdaGrad/RMSprop kernels. Off in the
    /// paper's base design.
    pub extended_alu: bool,
}

impl DramConfig {
    /// The paper's Table II device: DDR4-2133, 4 ranks × 4 bank groups × 4
    /// banks, direct-attach.
    pub fn ddr4_2133() -> Self {
        Self {
            name: "DDR4-2133".to_owned(),
            channels: 1,
            ranks: 4,
            bankgroups: 4,
            banks_per_group: 4,
            rows: 65536,
            columns: 128,
            burst_bytes: 64,
            tck_ps: 938,
            tcl: 16,
            trcd: 16,
            trp: 16,
            tras: 36,
            trc: 52,
            tccd_l: 6,
            tccd_s: 4,
            trrd_l: 6,
            trrd_s: 4,
            tfaw: 23,
            twr: 16,
            twtr_l: 8,
            twtr_s: 3,
            trtp: 8,
            tcwl: 14,
            tburst: 4,
            trefi: 8316,
            trfc: 374,
            trtrs: 2,
            tpim: 5,
            txp: 7,
            powerdown_idle: 64,
            idd0: 75.0,
            idd2p: 25.0,
            idd2n: 33.0,
            idd3p: 39.0,
            idd3n: 44.0,
            idd4r: 225.0,
            idd4w: 225.0,
            iddpre: 98.0,
            vdd: 1.2,
            io_pj_per_bit: 2.0,
            issue_mode: CommandIssueMode::Direct,
            data_bus: DataBusScope::Channel,
            pim_placement: PimPlacement::PerBankGroup,
            queue_depth: 64,
            extended_alu: false,
        }
    }

    /// DDR4-3200 speed bin (Fig. 12a sweep point). Timings scaled to the
    /// 625 ps clock from the same nanosecond-domain values.
    pub fn ddr4_3200() -> Self {
        let mut c = Self::ddr4_2133();
        c.name = "DDR4-3200".to_owned();
        c.tck_ps = 625;
        c.tcl = 22;
        c.trcd = 22;
        c.trp = 22;
        c.tras = 52;
        c.trc = 74;
        c.tccd_l = 8;
        c.tccd_s = 4;
        c.trrd_l = 8;
        c.trrd_s = 5;
        c.tfaw = 34;
        c.twr = 24;
        c.twtr_l = 12;
        c.twtr_s = 4;
        c.trtp = 12;
        c.tcwl = 16;
        c.trefi = 12480;
        c.trfc = 560;
        c
    }

    /// A DDR5-like device for the §IX outlook ("similar speedups or
    /// improvement if we exploit more bank group numbers"): 8 bank groups
    /// per rank, two independent subchannels (modeled as channels), BL16 on
    /// a 32-bit bus (still 64 B bursts), DDR5-4800-class timings. A
    /// first-order preset.
    pub fn ddr5_like() -> Self {
        let mut c = Self::ddr4_2133();
        c.name = "DDR5-4800".to_owned();
        c.channels = 2;
        c.ranks = 2;
        c.bankgroups = 8;
        c.banks_per_group = 4;
        c.tck_ps = 417;
        c.tcl = 40;
        c.trcd = 40;
        c.trp = 40;
        c.tras = 77;
        c.trc = 117;
        c.tccd_l = 12;
        c.tccd_s = 8;
        c.trrd_l = 12;
        c.trrd_s = 8;
        c.tfaw = 32;
        c.twr = 72;
        c.twtr_l = 24;
        c.twtr_s = 6;
        c.trtp = 18;
        c.tcwl = 38;
        c.tburst = 8; // BL16 on the 32-bit subchannel
        c.trefi = 9360;
        c.trfc = 700;
        c
    }

    /// An HBM2-like stack for the Fig. 12a sweep: 8 channels, wider rows of
    /// bank groups, pseudo-channel-style tCCD. This is a first-order model
    /// (the paper likewise treats HBM as a bandwidth point, §IX).
    pub fn hbm2_like() -> Self {
        let mut c = Self::ddr4_2133();
        c.name = "HBM2".to_owned();
        c.channels = 8;
        c.ranks = 1;
        c.bankgroups = 4;
        c.banks_per_group = 4;
        c.tck_ps = 1000;
        c.tcl = 14;
        c.trcd = 14;
        c.trp = 14;
        c.tras = 33;
        c.trc = 47;
        c.tccd_l = 4;
        c.tccd_s = 2;
        c.trrd_l = 4;
        c.trrd_s = 2;
        c.tfaw = 16;
        c.twr = 16;
        c.twtr_l = 8;
        c.twtr_s = 3;
        c.trtp = 3;
        c.tcwl = 7;
        c.trefi = 3900;
        c.trfc = 260;
        c.burst_bytes = 64; // 128-bit bus × BL4 per pseudo-channel
        c.tburst = 2;
        c
    }

    /// Number of banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bankgroups * self.banks_per_group
    }

    /// One memory cycle, in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        self.tck_ps as f64 / 1000.0
    }

    /// Peak external (off-chip) bandwidth of the whole memory system in
    /// bytes/second: one burst per tBURST per channel.
    ///
    /// For the paper's DDR4-2133 this is 17.06 GB/s (the "theoretical
    /// maximum of 17.1 GB/s" of §VI-B).
    pub fn peak_external_bw(&self) -> f64 {
        let per_channel = self.burst_bytes as f64 / (self.tburst as f64 * self.cycle_ns() * 1e-9);
        per_channel * self.channels as f64
    }

    /// Peak bank-group-internal bandwidth available to GradPIM units in
    /// bytes/second: one 64 B column per tCCD_L per bank group, summed over
    /// all bank groups of all ranks and channels.
    ///
    /// For the paper's DDR4-2133 with 4 ranks this is 181.3 GB/s (the
    /// dotted "peak bandwidth 181.28 GB/s" line of Fig. 11).
    pub fn peak_internal_bw(&self) -> f64 {
        let units = match self.pim_placement {
            PimPlacement::PerBankGroup => self.channels * self.ranks * self.bankgroups,
            PimPlacement::PerBank => self.channels * self.ranks * self.banks_per_rank(),
        };
        let per_unit = self.burst_bytes as f64 / (self.tccd_l as f64 * self.cycle_ns() * 1e-9);
        per_unit * units as f64
    }

    /// Command-issue capacity in commands/second (the Fig. 11 command-bus
    /// ceiling): one per tCK per channel in direct mode, one per tCK per
    /// rank in buffered mode.
    pub fn command_issue_capacity(&self) -> f64 {
        let streams = match self.issue_mode {
            CommandIssueMode::Direct => self.channels,
            CommandIssueMode::PerRankBuffered => self.channels * self.ranks,
        };
        streams as f64 / (self.cycle_ns() * 1e-9)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.bankgroups == 0 {
            return Err("organization fields must be non-zero".into());
        }
        if self.banks_per_group == 0 || self.rows == 0 || self.columns == 0 {
            return Err("organization fields must be non-zero".into());
        }
        if self.trc < self.tras + self.trp {
            return Err(format!("tRC {} < tRAS {} + tRP {}", self.trc, self.tras, self.trp));
        }
        if self.tccd_l < self.tccd_s {
            return Err("tCCD_L must be >= tCCD_S".into());
        }
        if self.burst_bytes == 0 || !self.burst_bytes.is_power_of_two() {
            return Err("burst_bytes must be a power of two".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2133()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let c = DramConfig::ddr4_2133();
        assert_eq!(c.tcl, 16);
        assert_eq!(c.trcd, 16);
        assert_eq!(c.trp, 16);
        assert_eq!(c.tras, 36);
        assert_eq!(c.tccd_l, 6);
        assert_eq!(c.tccd_s, 4);
        assert_eq!(c.tpim, 5);
        assert!((c.cycle_ns() - 0.94).abs() < 0.005);
        assert_eq!(c.idd0, 75.0);
        assert_eq!(c.iddpre, 98.0);
        assert_eq!(c.vdd, 1.2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_external_bandwidth_matches_paper() {
        // §VI-B: "theoretical maximum of 17.1GBps".
        let c = DramConfig::ddr4_2133();
        let gbps = c.peak_external_bw() / 1e9;
        assert!((gbps - 17.06).abs() < 0.15, "got {gbps}");
    }

    #[test]
    fn peak_internal_bandwidth_matches_paper() {
        // Fig. 11: "Peak bandwidth 181.28 GB/s".
        let c = DramConfig::ddr4_2133();
        let gbps = c.peak_internal_bw() / 1e9;
        assert!((gbps - 181.28).abs() < 1.0, "got {gbps}");
    }

    #[test]
    fn per_bank_placement_quadruples_internal_bw() {
        let mut c = DramConfig::ddr4_2133();
        let bg = c.peak_internal_bw();
        c.pim_placement = PimPlacement::PerBank;
        assert!((c.peak_internal_bw() / bg - 4.0).abs() < 1e-9);
    }

    #[test]
    fn buffered_mode_quadruples_command_capacity() {
        let mut c = DramConfig::ddr4_2133();
        let direct = c.command_issue_capacity();
        c.issue_mode = CommandIssueMode::PerRankBuffered;
        assert!((c.command_issue_capacity() / direct - 4.0).abs() < 1e-9);
    }

    #[test]
    fn presets_validate() {
        assert!(DramConfig::ddr4_2133().validate().is_ok());
        assert!(DramConfig::ddr4_3200().validate().is_ok());
        assert!(DramConfig::hbm2_like().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_trc() {
        let mut c = DramConfig::ddr4_2133();
        c.trc = 10;
        assert!(c.validate().is_err());
    }
}
