//! Plain stochastic gradient descent (Eq. 1 of the paper).

use crate::optimizer::{Optimizer, OptimizerKind};

/// Plain SGD: `θ_{t+1} = θ_t − η·g_t`, optionally with weight decay folded
/// into the gradient (`g ← g + β·θ`).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
    steps: u64,
}

impl Sgd {
    /// Creates a plain-SGD optimizer with learning rate `lr` and weight
    /// decay `weight_decay` (pass `0.0` for none).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay, steps: 0 }
    }

    /// The learning rate η.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (the §VIII learning-rate-scheduling hook).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Sgd
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            let g = g + self.weight_decay * *p;
            *p -= self.lr * g;
        }
        self.steps += 1;
    }

    fn state(&self, _i: usize) -> Option<&[f32]> {
        None
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_quadratic_bowl() {
        // f(x) = x², grad = 2x.
        let mut opt = Sgd::new(0.1, 0.0);
        let mut p = vec![5.0_f32, -3.0];
        for _ in 0..200 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-4), "{p:?}");
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn single_step_matches_formula() {
        let mut opt = Sgd::new(0.5, 0.0);
        let mut p = vec![1.0_f32];
        opt.step(&mut p, &[0.2]);
        assert!((p[0] - (1.0 - 0.5 * 0.2)).abs() < 1e-7);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1, 0.5);
        let mut p = vec![1.0_f32];
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - (1.0 - 0.1 * 0.5)).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut p = vec![1.0_f32; 3];
        opt.step(&mut p, &[0.0; 2]);
    }

    #[test]
    fn no_state_arrays() {
        let opt = Sgd::new(0.1, 0.0);
        assert!(opt.state(0).is_none());
    }
}
