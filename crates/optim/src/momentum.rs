//! SGD with momentum and weight decay — the paper's running example
//! (Eq. 2–4, Fig. 5 middle).

use crate::optimizer::{Optimizer, OptimizerKind};

/// Momentum SGD exactly as formulated in the paper:
///
/// ```text
/// v_t     = α·v_{t-1} − η·(β·θ_t + g_t)      (Eq. 4; β = 0 gives Eq. 2)
/// θ_{t+1} = θ_t + v_t                         (Eq. 3)
/// ```
///
/// This sign convention (velocity accumulates the *negative* scaled
/// gradient and is *added* to the weights) is what the GradPIM kernel in
/// `gradpim-core` compiles to scaled reads with negative scaler slots, so
/// the reference must use the identical algebra.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
    steps: u64,
}

impl MomentumSgd {
    /// Creates a momentum-SGD optimizer for `len` parameters.
    ///
    /// `lr` is η, `momentum` is α, `weight_decay` is β of Eq. 4.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32, len: usize) -> Self {
        Self { lr, momentum, weight_decay, velocity: vec![0.0; len], steps: 0 }
    }

    /// The current velocity (momentum) array v.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Overwrites the velocity array (used to seed equivalence tests).
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the constructed length.
    pub fn set_velocity(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.velocity.len(), "velocity length mismatch");
        self.velocity.copy_from_slice(v);
    }

    /// The learning rate η.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (the §VIII learning-rate-scheduling hook).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for MomentumSgd {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::MomentumSgd
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "params/state length mismatch");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v - self.lr * (self.weight_decay * *p + g);
            *p += *v;
        }
        self.steps += 1;
    }

    fn state(&self, i: usize) -> Option<&[f32]> {
        (i == 0).then_some(self.velocity.as_slice())
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::Sgd;

    #[test]
    fn matches_eq4_eq3_by_hand() {
        let mut opt = MomentumSgd::new(0.1, 0.9, 0.01, 1);
        let mut p = vec![2.0_f32];
        opt.step(&mut p, &[0.5]);
        // v1 = 0.9*0 - 0.1*(0.01*2 + 0.5) = -0.052; θ = 2 - 0.052
        assert!((opt.velocity()[0] + 0.052).abs() < 1e-6);
        assert!((p[0] - 1.948).abs() < 1e-6);

        opt.step(&mut p, &[0.3]);
        // v2 = 0.9*(-0.052) - 0.1*(0.01*1.948 + 0.3) = -0.0467 - 0.0319...
        let v2 = 0.9_f32 * -0.052 - 0.1 * (0.01 * 1.948 + 0.3);
        assert!((opt.velocity()[0] - v2).abs() < 1e-6);
        assert!((p[0] - (1.948 + v2)).abs() < 1e-6);
    }

    #[test]
    fn converges_faster_than_plain_sgd_on_ill_conditioned_bowl() {
        // f(x, y) = 0.5*(x² + 50·y²): momentum damps the oscillation along y.
        let loss = |p: &[f32]| 0.5 * (p[0] * p[0] + 50.0 * p[1] * p[1]);
        let grad = |p: &[f32]| vec![p[0], 50.0 * p[1]];

        let mut mom = MomentumSgd::new(0.015, 0.9, 0.0, 2);
        let mut sgd = Sgd::new(0.015, 0.0);
        let mut pm = vec![1.0_f32, 1.0];
        let mut ps = vec![1.0_f32, 1.0];
        for _ in 0..60 {
            let gm = grad(&pm);
            mom.step(&mut pm, &gm);
            let gs = grad(&ps);
            sgd.step(&mut ps, &gs);
        }
        assert!(loss(&pm) < loss(&ps), "momentum {} vs sgd {}", loss(&pm), loss(&ps));
    }

    #[test]
    fn zero_momentum_equals_sgd() {
        let mut mom = MomentumSgd::new(0.05, 0.0, 0.0, 3);
        let mut sgd = Sgd::new(0.05, 0.0);
        let mut pm = vec![1.0_f32, -2.0, 0.5];
        let mut ps = pm.clone();
        for step in 0..10 {
            let g: Vec<f32> = pm.iter().map(|&x| x * (step as f32 + 1.0) * 0.1).collect();
            mom.step(&mut pm, &g);
            let gs: Vec<f32> = ps.iter().map(|&x| x * (step as f32 + 1.0) * 0.1).collect();
            sgd.step(&mut ps, &gs);
        }
        for (a, b) in pm.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn velocity_bounded_by_geometric_series() {
        // |v_t| <= lr * g_max / (1 - alpha) for bounded gradients.
        let (lr, alpha, gmax) = (0.1f32, 0.9f32, 2.0f32);
        let mut opt = MomentumSgd::new(lr, alpha, 0.0, 1);
        let mut p = vec![0.0f32];
        let bound = lr * gmax / (1.0 - alpha) + 1e-4;
        for i in 0..500 {
            let g = if i % 2 == 0 { gmax } else { -gmax * 0.5 };
            opt.step(&mut p, &[g]);
            assert!(opt.velocity()[0].abs() <= bound, "step {i}: {}", opt.velocity()[0]);
        }
    }

    #[test]
    fn exposes_one_state_array() {
        let opt = MomentumSgd::new(0.1, 0.9, 0.0, 4);
        assert_eq!(opt.state(0).unwrap().len(), 4);
        assert!(opt.state(1).is_none());
    }
}
