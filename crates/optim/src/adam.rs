//! Adam (Kingma & Ba) — the paper's §VIII example of an algorithm needing a
//! second-order momentum array and a multi-pass GradPIM schedule.

use crate::optimizer::{Optimizer, OptimizerKind};

/// The Adam optimizer with bias correction:
///
/// ```text
/// m_t = β₁·m_{t-1} + (1−β₁)·g_t
/// u_t = β₂·u_{t-1} + (1−β₂)·g_t²
/// θ_{t+1} = θ_t − η · m̂_t / (√û_t + ε)
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    u: Vec<f32>,
    steps: u64,
}

impl Adam {
    /// Creates an Adam optimizer for `len` parameters with the given
    /// hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, len: usize) -> Self {
        Self { lr, beta1, beta2, eps, m: vec![0.0; len], u: vec![0.0; len], steps: 0 }
    }

    /// Creates an Adam optimizer with the customary defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn with_defaults(lr: f32, len: usize) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8, len)
    }

    /// First-moment array m.
    pub fn first_moment(&self) -> &[f32] {
        &self.m
    }

    /// Second-moment array u.
    pub fn second_moment(&self) -> &[f32] {
        &self.u
    }
}

impl Optimizer for Adam {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Adam
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.m.len(), "params/state length mismatch");
        self.steps += 1;
        let t = self.steps as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for (i, (p, &g)) in params.iter_mut().zip(grads).enumerate() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.u[i] = self.beta2 * self.u[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let u_hat = self.u[i] / bc2;
            *p -= self.lr * m_hat / (u_hat.sqrt() + self.eps);
        }
    }

    fn state(&self, i: usize) -> Option<&[f32]> {
        match i {
            0 => Some(&self.m),
            1 => Some(&self.u),
            _ => None,
        }
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for g in [1e-4_f32, 1.0, 1e4] {
            let mut opt = Adam::with_defaults(0.01, 1);
            let mut p = vec![0.0_f32];
            opt.step(&mut p, &[g]);
            assert!((p[0].abs() - 0.01).abs() < 1e-4, "g={g} step={}", p[0]);
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::with_defaults(0.05, 2);
        let mut p = vec![2.0_f32, -1.5];
        for _ in 0..500 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-2), "{p:?}");
    }

    #[test]
    fn two_state_arrays() {
        let opt = Adam::with_defaults(0.01, 3);
        assert_eq!(opt.state(0).unwrap().len(), 3);
        assert_eq!(opt.state(1).unwrap().len(), 3);
        assert!(opt.state(2).is_none());
    }

    #[test]
    fn moments_track_gradient_statistics() {
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 1);
        let mut p = vec![0.0_f32];
        // β₂ = 0.999 has a time constant of ~1000 steps; run 10k so the
        // second moment settles within tolerance.
        for _ in 0..10_000 {
            opt.step(&mut p, &[2.0]);
        }
        // m → E[g] = 2, u → E[g²] = 4 for a constant gradient.
        assert!((opt.first_moment()[0] - 2.0).abs() < 0.05);
        assert!((opt.second_moment()[0] - 4.0).abs() < 0.05);
    }
}
