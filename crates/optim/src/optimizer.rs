//! The [`Optimizer`] trait and shared hyper-parameter plumbing.

use std::fmt;

/// Which parameter-update algorithm (§III-A, §VIII of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent (Eq. 1).
    Sgd,
    /// SGD with momentum (Eq. 2–3), optionally with weight decay (Eq. 4).
    MomentumSgd,
    /// Nesterov accelerated gradient — supported "naturally in the same way"
    /// as momentum (§VIII).
    Nag,
    /// Adam — needs a second-order momentum array and a multi-pass GradPIM
    /// schedule (§VIII).
    Adam,
    /// AdaGrad — accumulates squared gradients (§VIII "decaying factor").
    AdaGrad,
    /// RMSprop — exponentially decayed squared-gradient average.
    RmsProp,
}

impl OptimizerKind {
    /// Number of *per-parameter state arrays* the algorithm keeps in DRAM in
    /// addition to the master weights. This is what determines how many
    /// concurrently-open rows (banks within a bank group) the GradPIM update
    /// procedure needs (§IV-D2, §VIII): weights + gradients + state arrays
    /// must all sit in distinct banks of the same bank group.
    ///
    /// ```
    /// use gradpim_optim::OptimizerKind;
    /// assert_eq!(OptimizerKind::Sgd.state_arrays(), 0);
    /// assert_eq!(OptimizerKind::MomentumSgd.state_arrays(), 1);
    /// assert_eq!(OptimizerKind::Adam.state_arrays(), 2);
    /// ```
    pub const fn state_arrays(self) -> usize {
        match self {
            OptimizerKind::Sgd => 0,
            OptimizerKind::MomentumSgd | OptimizerKind::Nag => 1,
            OptimizerKind::AdaGrad | OptimizerKind::RmsProp => 1,
            OptimizerKind::Adam => 2,
        }
    }

    /// Whether the update rule is expressible with GradPIM's add/sub +
    /// scaled-read primitive set in a single pass over the data (§VIII):
    /// algorithms needing element-wise squares, square roots or divisions
    /// require multiple passes with intermediate arrays.
    pub const fn single_pass(self) -> bool {
        matches!(self, OptimizerKind::Sgd | OptimizerKind::MomentumSgd | OptimizerKind::Nag)
    }

    /// All algorithms implemented in this workspace.
    pub const ALL: [OptimizerKind; 6] = [
        OptimizerKind::Sgd,
        OptimizerKind::MomentumSgd,
        OptimizerKind::Nag,
        OptimizerKind::Adam,
        OptimizerKind::AdaGrad,
        OptimizerKind::RmsProp,
    ];
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptimizerKind::Sgd => "SGD",
            OptimizerKind::MomentumSgd => "momentum-SGD",
            OptimizerKind::Nag => "NAG",
            OptimizerKind::Adam => "Adam",
            OptimizerKind::AdaGrad => "AdaGrad",
            OptimizerKind::RmsProp => "RMSprop",
        };
        f.write_str(s)
    }
}

/// Hyper-parameters for all update rules, with the paper's defaults.
///
/// Only the fields relevant to a given [`OptimizerKind`] are read by it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperParams {
    /// Learning rate η (paper example: 0.01).
    pub lr: f32,
    /// Momentum decay factor α.
    pub momentum: f32,
    /// Weight-decay term β (Eq. 4).
    pub weight_decay: f32,
    /// Adam β₁.
    pub beta1: f32,
    /// Adam β₂ / RMSprop decay.
    pub beta2: f32,
    /// Numerical-stability epsilon for Adam/AdaGrad/RMSprop.
    pub eps: f32,
}

impl Default for HyperParams {
    fn default() -> Self {
        Self { lr: 0.01, momentum: 0.9, weight_decay: 1e-4, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// A parameter-update algorithm operating on flat `f32` arrays.
///
/// Implementations own their per-parameter state (momentum vectors etc.) and
/// expose it through [`Optimizer::state`] so in-memory executions can be
/// checked array-for-array against the reference.
pub trait Optimizer: fmt::Debug {
    /// The algorithm this optimizer implements.
    fn kind(&self) -> OptimizerKind;

    /// Applies one update step: consumes `grads` and mutates `params`
    /// in place.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or if the length differs from
    /// the length this optimizer was constructed for.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Read access to the i-th per-parameter state array (e.g. momentum).
    ///
    /// Returns `None` when `i >= kind().state_arrays()`.
    fn state(&self, i: usize) -> Option<&[f32]>;

    /// Number of update steps applied so far.
    fn steps(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_array_counts() {
        assert_eq!(OptimizerKind::Sgd.state_arrays(), 0);
        assert_eq!(OptimizerKind::MomentumSgd.state_arrays(), 1);
        assert_eq!(OptimizerKind::Nag.state_arrays(), 1);
        assert_eq!(OptimizerKind::Adam.state_arrays(), 2);
        assert_eq!(OptimizerKind::AdaGrad.state_arrays(), 1);
        assert_eq!(OptimizerKind::RmsProp.state_arrays(), 1);
    }

    #[test]
    fn single_pass_classification() {
        // §VIII: momentum-family maps directly; adaptive methods need more.
        assert!(OptimizerKind::Sgd.single_pass());
        assert!(OptimizerKind::MomentumSgd.single_pass());
        assert!(OptimizerKind::Nag.single_pass());
        assert!(!OptimizerKind::Adam.single_pass());
        assert!(!OptimizerKind::AdaGrad.single_pass());
        assert!(!OptimizerKind::RmsProp.single_pass());
    }

    #[test]
    fn fit_in_one_bank_group() {
        // §IV-D2: four banks per bank group cover θ, g and the state arrays
        // "in most of the SGD-based parameter update algorithms".
        for kind in OptimizerKind::ALL {
            let arrays_needed = 2 + kind.state_arrays(); // θ + g + state
            assert!(arrays_needed <= 4, "{kind} exceeds one bank group");
        }
    }
}
