//! RMSprop (Tieleman & Hinton) — cited by §VIII alongside AdaGrad.

use crate::optimizer::{Optimizer, OptimizerKind};

/// RMSprop: exponentially decayed average of squared gradients.
///
/// ```text
/// s_t = ρ·s_{t-1} + (1−ρ)·g_t²
/// θ_{t+1} = θ_t − η·g_t / (√s_t + ε)
/// ```
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    rho: f32,
    eps: f32,
    sq_avg: Vec<f32>,
    steps: u64,
}

impl RmsProp {
    /// Creates an RMSprop optimizer for `len` parameters with decay `rho`.
    pub fn new(lr: f32, rho: f32, eps: f32, len: usize) -> Self {
        Self { lr, rho, eps, sq_avg: vec![0.0; len], steps: 0 }
    }

    /// Decayed squared-gradient average s.
    pub fn square_average(&self) -> &[f32] {
        &self.sq_avg
    }
}

impl Optimizer for RmsProp {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::RmsProp
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.sq_avg.len(), "params/state length mismatch");
        for ((p, &g), s) in params.iter_mut().zip(grads).zip(&mut self.sq_avg) {
            *s = self.rho * *s + (1.0 - self.rho) * g * g;
            *p -= self.lr * g / (s.sqrt() + self.eps);
        }
        self.steps += 1;
    }

    fn state(&self, i: usize) -> Option<&[f32]> {
        (i == 0).then_some(self.sq_avg.as_slice())
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_average_tracks_constant_gradient() {
        let mut opt = RmsProp::new(0.01, 0.9, 1e-8, 1);
        let mut p = vec![0.0_f32];
        for _ in 0..300 {
            opt.step(&mut p, &[3.0]);
        }
        assert!((opt.square_average()[0] - 9.0).abs() < 0.05);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = RmsProp::new(0.01, 0.9, 1e-8, 2);
        let mut p = vec![1.0_f32, -2.0];
        for _ in 0..3000 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 5e-2), "{p:?}");
    }

    #[test]
    fn adapts_to_gradient_scale() {
        // Same relative progress for very different gradient magnitudes.
        let run = |scale: f32| {
            let mut opt = RmsProp::new(0.01, 0.9, 1e-8, 1);
            let mut p = vec![1.0_f32];
            for _ in 0..50 {
                let g = vec![2.0 * p[0] * scale];
                opt.step(&mut p, &g);
            }
            p[0]
        };
        let a = run(1.0);
        let b = run(1000.0);
        assert!((a - b).abs() < 0.05, "a={a} b={b}");
    }
}
