//! AdaGrad (Duchi et al.) — cited by §VIII as an algorithm with a "decaying
//! factor" needing extra per-parameter state.

use crate::optimizer::{Optimizer, OptimizerKind};

/// AdaGrad: per-parameter learning-rate adaptation by accumulated squared
/// gradients.
///
/// ```text
/// h_t = h_{t-1} + g_t²
/// θ_{t+1} = θ_t − η·g_t / (√h_t + ε)
/// ```
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
    steps: u64,
}

impl AdaGrad {
    /// Creates an AdaGrad optimizer for `len` parameters.
    pub fn new(lr: f32, eps: f32, len: usize) -> Self {
        Self { lr, eps, accum: vec![0.0; len], steps: 0 }
    }

    /// Accumulated squared-gradient array h.
    pub fn accumulator(&self) -> &[f32] {
        &self.accum
    }
}

impl Optimizer for AdaGrad {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::AdaGrad
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.accum.len(), "params/state length mismatch");
        for ((p, &g), h) in params.iter_mut().zip(grads).zip(&mut self.accum) {
            *h += g * g;
            *p -= self.lr * g / (h.sqrt() + self.eps);
        }
        self.steps += 1;
    }

    fn state(&self, i: usize) -> Option<&[f32]> {
        (i == 0).then_some(self.accum.as_slice())
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_sized() {
        let mut opt = AdaGrad::new(0.1, 0.0, 1);
        let mut p = vec![0.0_f32];
        opt.step(&mut p, &[5.0]);
        // g/√(g²) = 1 ⇒ step = lr.
        assert!((p[0] + 0.1).abs() < 1e-6);
    }

    #[test]
    fn step_sizes_decay_over_time() {
        let mut opt = AdaGrad::new(0.1, 0.0, 1);
        let mut p = vec![0.0_f32];
        let mut last = f32::MAX;
        for _ in 0..10 {
            let before = p[0];
            opt.step(&mut p, &[1.0]);
            let delta = (p[0] - before).abs();
            assert!(delta < last);
            last = delta;
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = AdaGrad::new(0.5, 1e-8, 2);
        let mut p = vec![2.0_f32, -3.0];
        for _ in 0..2000 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 5e-2), "{p:?}");
    }
}
