//! Nesterov accelerated gradient (§VIII: "algorithms such as NAG can be
//! supported with GradPIM naturally in the same way" as momentum).

use crate::optimizer::{Optimizer, OptimizerKind};

/// Nesterov accelerated gradient in the common "momentum look-ahead" form:
///
/// ```text
/// v_t     = α·v_{t-1} − η·g_t
/// θ_{t+1} = θ_t + α·v_t − η·g_t
/// ```
///
/// which applies the velocity *after* the gradient correction — the same
/// primitive mix (scaled reads + adds) as momentum SGD, so it maps onto
/// GradPIM with one extra scaled read per column.
#[derive(Debug, Clone)]
pub struct Nag {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
    steps: u64,
}

impl Nag {
    /// Creates a NAG optimizer for `len` parameters.
    pub fn new(lr: f32, momentum: f32, len: usize) -> Self {
        Self { lr, momentum, velocity: vec![0.0; len], steps: 0 }
    }

    /// The current velocity array.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }
}

impl Optimizer for Nag {
    fn kind(&self) -> OptimizerKind {
        OptimizerKind::Nag
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "params/state length mismatch");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v - self.lr * g;
            *p += self.momentum * *v - self.lr * g;
        }
        self.steps += 1;
    }

    fn state(&self, i: usize) -> Option<&[f32]> {
        (i == 0).then_some(self.velocity.as_slice())
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_matches_formula() {
        let mut opt = Nag::new(0.1, 0.9, 1);
        let mut p = vec![1.0_f32];
        opt.step(&mut p, &[0.5]);
        // v = -0.05; θ = 1 + 0.9*(-0.05) - 0.05 = 0.905
        assert!((opt.velocity()[0] + 0.05).abs() < 1e-7);
        assert!((p[0] - 0.905).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Nag::new(0.02, 0.9, 2);
        let mut p = vec![3.0_f32, -4.0];
        for _ in 0..300 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-3), "{p:?}");
    }

    #[test]
    fn reduces_to_gradient_step_without_momentum() {
        let mut opt = Nag::new(0.1, 0.0, 1);
        let mut p = vec![1.0_f32];
        opt.step(&mut p, &[1.0]);
        assert!((p[0] - 0.9).abs() < 1e-7);
    }
}
