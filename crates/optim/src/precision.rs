//! Numeric precision vocabulary shared across the workspace.
//!
//! The paper evaluates *mixed-precision* training (§II, Fig. 12c/d): the NPU
//! computes forward/backward in a low precision while the update phase works
//! on high-precision master copies of the weights. A [`PrecisionMix`] names
//! one (low, high) pair; [`Precision`] names a single storage format.

use std::fmt;

/// A single numeric storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 8-bit integer with a power-of-two per-tensor scale ([`crate::quant`]).
    Int8,
    /// IEEE-754 binary16 (half precision).
    Fp16,
    /// IEEE-754 binary32 (single precision).
    Fp32,
}

impl Precision {
    /// Storage size of one element, in bytes.
    ///
    /// ```
    /// use gradpim_optim::Precision;
    /// assert_eq!(Precision::Int8.bytes(), 1);
    /// assert_eq!(Precision::Fp16.bytes(), 2);
    /// assert_eq!(Precision::Fp32.bytes(), 4);
    /// ```
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Int8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }

    /// Storage size of one element, in bits.
    pub const fn bits(self) -> usize {
        self.bytes() * 8
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Int8 => write!(f, "8b"),
            Precision::Fp16 => write!(f, "16b"),
            Precision::Fp32 => write!(f, "32b"),
        }
    }
}

/// A mixed-precision training configuration: the low precision used by the
/// NPU for forward/backward tensors and the high precision used for master
/// weights and optimizer state.
///
/// The paper's default is 8/32 (`PrecisionMix::MIXED_8_32`); Fig. 12c/d sweep
/// the other three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionMix {
    /// Precision of activations, low-precision weights and gradients as seen
    /// by the NPU.
    pub low: Precision,
    /// Precision of master weights and optimizer state in DRAM.
    pub high: Precision,
}

impl PrecisionMix {
    /// The paper's default setting: 8-bit gradients / 32-bit master weights.
    pub const MIXED_8_32: Self = Self { low: Precision::Int8, high: Precision::Fp32 };
    /// 16-bit / 32-bit mixed precision (the dominant industrial setting).
    pub const MIXED_16_32: Self = Self { low: Precision::Fp16, high: Precision::Fp32 };
    /// 8-bit / 16-bit mixed precision.
    pub const MIXED_8_16: Self = Self { low: Precision::Int8, high: Precision::Fp16 };
    /// Full precision (32/32): quantization/dequantization are omitted
    /// (§IV-D).
    pub const FULL_32: Self = Self { low: Precision::Fp32, high: Precision::Fp32 };

    /// All four settings evaluated in Fig. 12c/d, in the paper's order.
    pub const ALL: [Self; 4] =
        [Self::MIXED_8_32, Self::MIXED_16_32, Self::MIXED_8_16, Self::FULL_32];

    /// Whether quantization/dequantization steps are required around the
    /// update phase (true whenever low != high).
    pub const fn is_mixed(self) -> bool {
        !matches!(
            (self.low, self.high),
            (Precision::Fp32, Precision::Fp32)
                | (Precision::Fp16, Precision::Fp16)
                | (Precision::Int8, Precision::Int8)
        )
    }

    /// Quantization ratio `high.bits() / low.bits()` — how many quantized
    /// elements fit in the space of one master element. This is the "four
    /// times for 8-bit quantization" factor of §IV-B that sizes the
    /// quantization register reuse.
    pub fn quant_ratio(self) -> usize {
        self.high.bytes() / self.low.bytes()
    }
}

impl fmt::Display for PrecisionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mixed() {
            write!(f, "{}/{}", self.low, self.high)
        } else {
            write!(f, "{}/{} (full)", self.low, self.high)
        }
    }
}

impl Default for PrecisionMix {
    fn default() -> Self {
        Self::MIXED_8_32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_bits() {
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Fp16.bits(), 16);
        assert_eq!(Precision::Fp32.bits(), 32);
    }

    #[test]
    fn mixedness() {
        assert!(PrecisionMix::MIXED_8_32.is_mixed());
        assert!(PrecisionMix::MIXED_16_32.is_mixed());
        assert!(PrecisionMix::MIXED_8_16.is_mixed());
        assert!(!PrecisionMix::FULL_32.is_mixed());
    }

    #[test]
    fn quant_ratios_match_paper() {
        // §IV-B: "four times for 8bit quantization" (8/32).
        assert_eq!(PrecisionMix::MIXED_8_32.quant_ratio(), 4);
        assert_eq!(PrecisionMix::MIXED_16_32.quant_ratio(), 2);
        assert_eq!(PrecisionMix::MIXED_8_16.quant_ratio(), 2);
        assert_eq!(PrecisionMix::FULL_32.quant_ratio(), 1);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(PrecisionMix::MIXED_8_32.to_string(), "8b/32b");
        assert_eq!(PrecisionMix::FULL_32.to_string(), "32b/32b (full)");
    }

    #[test]
    fn default_is_8_32() {
        assert_eq!(PrecisionMix::default(), PrecisionMix::MIXED_8_32);
    }
}
