//! Quantization numerics: int8 with power-of-two scales, and binary16.
//!
//! The paper does not pin one 8-bit training format (it cites integer \[33\]
//! and FP8 \[98\], \[102\] lines of work); we use *symmetric int8 linear
//! quantization with a power-of-two per-tensor scale*. Power-of-two scales
//! match GradPIM's hardware budget exactly: the in-DRAM scaler is built from
//! shifters and adders (§IV-B), so scaling by `2^e` is a pure shift and
//! the quantization step itself needs no multiplier.
//!
//! 16-bit tensors use IEEE-754 binary16, converted by the hand-rolled
//! [`f32_to_f16`]/[`f16_to_f32`] pair (round-to-nearest-even, subnormals,
//! infinities and NaN handled) so the workspace needs no external `half`
//! dependency.

/// A power-of-two quantization scale: a quantized tensor stores
/// `q_i ∈ [-127, 127]` and represents `q_i * 2^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q8Scale {
    /// Binary exponent of the scale factor.
    pub exponent: i32,
}

impl Q8Scale {
    /// Chooses the smallest power-of-two scale that covers `max_abs`
    /// without clipping, i.e. the minimal `e` such that
    /// `max_abs <= 127 * 2^e`.
    ///
    /// A `max_abs` of zero (all-zero tensor) yields the scale `2^-20`
    /// so dequantization stays exact for zeros.
    ///
    /// ```
    /// use gradpim_optim::Q8Scale;
    /// let s = Q8Scale::for_max_abs(1.0);
    /// assert!(127.0 * s.factor() >= 1.0);
    /// assert!(127.0 * (s.factor() / 2.0) < 1.0);
    /// ```
    pub fn for_max_abs(max_abs: f32) -> Self {
        if max_abs <= 0.0 || !max_abs.is_finite() {
            return Self { exponent: -20 };
        }
        // smallest e with 127 * 2^e >= max_abs  =>  e = ceil(log2(max_abs/127))
        let e = (max_abs / 127.0).log2().ceil() as i32;
        Self { exponent: e }
    }

    /// Chooses a scale for a whole tensor.
    pub fn for_tensor(data: &[f32]) -> Self {
        let max_abs = data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()));
        Self::for_max_abs(max_abs)
    }

    /// The multiplicative scale factor `2^exponent`.
    pub fn factor(self) -> f32 {
        (self.exponent as f32).exp2()
    }
}

/// Quantizes one value to int8 under `scale` (round half away from zero,
/// clamp to `[-127, 127]`).
pub fn quantize_i8(x: f32, scale: Q8Scale) -> i8 {
    let q = (x / scale.factor()).round();
    q.clamp(-127.0, 127.0) as i8
}

/// Dequantizes one int8 value under `scale`.
pub fn dequantize_i8(q: i8, scale: Q8Scale) -> f32 {
    q as f32 * scale.factor()
}

/// Quantizes a slice, returning the chosen scale and the quantized bytes.
pub fn quantize_slice_i8(data: &[f32]) -> (Q8Scale, Vec<i8>) {
    let scale = Q8Scale::for_tensor(data);
    (scale, data.iter().map(|&x| quantize_i8(x, scale)).collect())
}

/// Dequantizes a slice of int8 values.
pub fn dequantize_slice_i8(q: &[i8], scale: Q8Scale) -> Vec<f32> {
    q.iter().map(|&v| dequantize_i8(v, scale)).collect()
}

/// Converts an `f32` to IEEE-754 binary16 bits with round-to-nearest-even.
///
/// Handles normals, subnormals, overflow to infinity, and NaN (preserving a
/// quiet payload bit).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((mant >> 13) as u16 & 0x03ff) | 0x0200
        };
    }

    // Re-bias: f32 exponent bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal f16. 23-bit mantissa -> 10-bit with RNE on the dropped 13.
        let exp16 = (unbiased + 15) as u32;
        let mant16 = mant >> 13;
        let rem = mant & 0x1fff;
        let halfway = 0x1000;
        let mut out = ((exp16 << 10) | mant16) as u16;
        if rem > halfway || (rem == halfway && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent; that is correct RNE
        }
        return sign | out;
    }
    if unbiased >= -25 {
        // Subnormal f16: implicit leading 1 becomes explicit, shifted right.
        let shift = (-14 - unbiased) as u32; // 1..=11
        let full = mant | 0x0080_0000; // 24-bit significand
        let total_shift = 13 + shift;
        let mant16 = full >> total_shift;
        let rem = full & ((1 << total_shift) - 1);
        let halfway = 1u32 << (total_shift - 1);
        let mut out = mant16 as u16;
        if rem > halfway || (rem == halfway && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    // Underflow to signed zero.
    sign
}

/// Converts IEEE-754 binary16 bits to `f32` (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;

    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: normalize. The value is m·2⁻²⁴; after k left
            // shifts bit 10 holds the leading 1 and the exponent is
            // 2^(−14−k), i.e. biased 113−k.
            let mut e = 113u32;
            let mut m = m;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (e << 23) | (m << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => {
            let exp32 = e + 127 - 15;
            sign | (exp32 << 23) | (m << 13)
        }
    };
    f32::from_bits(bits)
}

/// Round-trips an `f32` through binary16 (the precision loss a 16-bit tensor
/// experiences in DRAM).
pub fn f16_round_trip(x: f32) -> f32 {
    f16_to_f32(f32_to_f16(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_scale_covers_range() {
        for max in [1e-6_f32, 0.01, 0.5, 1.0, 3.7, 100.0, 1e6] {
            let s = Q8Scale::for_max_abs(max);
            assert!(127.0 * s.factor() >= max, "scale 2^{} does not cover {max}", s.exponent);
        }
    }

    #[test]
    fn q8_zero_tensor() {
        let (s, q) = quantize_slice_i8(&[0.0, 0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(dequantize_slice_i8(&q, s), vec![0.0, 0.0]);
    }

    #[test]
    fn q8_round_trip_error_bound() {
        let data: Vec<f32> = (-100..=100).map(|i| i as f32 * 0.013).collect();
        let (s, q) = quantize_slice_i8(&data);
        let back = dequantize_slice_i8(&q, s);
        for (x, y) in data.iter().zip(&back) {
            assert!(
                (x - y).abs() <= s.factor() / 2.0 + 1e-9,
                "|{x} - {y}| > half step {}",
                s.factor() / 2.0
            );
        }
    }

    #[test]
    fn q8_clamps() {
        let s = Q8Scale { exponent: 0 };
        assert_eq!(quantize_i8(1e9, s), 127);
        assert_eq!(quantize_i8(-1e9, s), -127);
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f32_to_f16(65536.0), 0x7c00); // overflow -> inf
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Smallest positive subnormal: 2^-24.
        assert_eq!(f32_to_f16(2.0_f32.powi(-24)), 0x0001);
        assert_eq!(f16_to_f32(0x0001), 2.0_f32.powi(-24));
        // Smallest normal: 2^-14.
        assert_eq!(f32_to_f16(2.0_f32.powi(-14)), 0x0400);
    }

    #[test]
    fn f16_round_trip_exact_for_representable() {
        // All f16 bit patterns except NaN round-trip exactly.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let mant = h & 0x03ff;
            if exp == 0x1f && mant != 0 {
                continue; // NaN payloads not bit-preserved
            }
            let x = f16_to_f32(h);
            assert_eq!(f32_to_f16(x), h, "h={h:#06x} x={x}");
        }
    }

    #[test]
    fn f16_rne_ties() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10: ties to
        // even (mantissa 0 -> stays at 1.0).
        let x = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(f32_to_f16(x), 0x3c00);
        // 1.0 + 3*2^-11 is halfway between odd and even mantissa: rounds up
        // to even (mantissa 2).
        let y = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(f32_to_f16(y), 0x3c02);
    }

    #[test]
    fn f16_relative_error_bound() {
        for i in 1..1000 {
            let x = i as f32 * 0.37;
            let r = f16_round_trip(x);
            assert!(((x - r) / x).abs() <= 2.0_f32.powi(-11) + 1e-9, "x={x} r={r}");
        }
    }
}
