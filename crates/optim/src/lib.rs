//! Reference optimizer algebra and training numerics for the GradPIM
//! reproduction.
//!
//! This crate is the *ground truth* against which the in-DRAM execution of
//! parameter updates (crate `gradpim-core`) is validated. It provides:
//!
//! * every parameter-update algorithm named in the paper (§III-A, §VIII):
//!   [`Sgd`], [`MomentumSgd`] (with weight decay), [`Nag`], [`Adam`],
//!   [`AdaGrad`], [`RmsProp`], all behind the [`Optimizer`] trait;
//! * the mixed-precision numerics of §II/§VI-C: int8 linear quantization
//!   with power-of-two scales and a hand-rolled IEEE-754 binary16
//!   implementation ([`quant`]);
//! * the [`Precision`]/[`PrecisionMix`] vocabulary used across the whole
//!   workspace (the 8/32, 16/32, 8/16 and 32/32 settings of Fig. 12c/d).
//!
//! # Example
//!
//! ```
//! use gradpim_optim::{MomentumSgd, Optimizer};
//!
//! // Minimise f(x) = x^2 with momentum SGD: gradient is 2x.
//! let mut opt = MomentumSgd::new(0.1, 0.9, 0.0, 1);
//! let mut theta = vec![1.0_f32];
//! for _ in 0..200 {
//!     let g = vec![2.0 * theta[0]];
//!     opt.step(&mut theta, &g);
//! }
//! assert!(theta[0].abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adagrad;
pub mod adam;
pub mod momentum;
pub mod nag;
pub mod optimizer;
pub mod precision;
pub mod quant;
pub mod rmsprop;
pub mod sgd;

pub use adagrad::AdaGrad;
pub use adam::Adam;
pub use momentum::MomentumSgd;
pub use nag::Nag;
pub use optimizer::{HyperParams, Optimizer, OptimizerKind};
pub use precision::{Precision, PrecisionMix};
pub use quant::{dequantize_i8, f16_to_f32, f32_to_f16, quantize_i8, Q8Scale};
pub use rmsprop::RmsProp;
pub use sgd::Sgd;
