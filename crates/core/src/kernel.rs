//! The GradPIM kernel compiler: optimizer algebra → per-unit command
//! streams (§IV-D, Fig. 5).
//!
//! One *step* of mixed-precision training compiles into three sub-kernels
//! per bank-group unit, over the columns that unit owns:
//!
//! 1. **Dequantization** (Fig. 5 top): `Q(g)` columns → quantization
//!    register → dequantized `g` columns, written back in master precision.
//! 2. **Parameter update** (Fig. 5 middle): scaled reads of g, v, θ with
//!    the MRW-pinned scaler slots, parallel adds, and writebacks of v and θ.
//! 3. **Quantization** (Fig. 5 bottom): θ columns → quant register →
//!    `Q(θ)` columns for the next forward pass.
//!
//! Scaler-slot convention for momentum SGD with weight decay (Eq. 3/4):
//! slot 0 = −η, slot 1 = α, slot 2 = −ηβ, slot 3 = +1.

use gradpim_dram::{DramConfig, PimOp};
use gradpim_optim::{HyperParams, OptimizerKind};

use crate::placement::{ArrayName, Chunk, Placement};
use crate::scaler::ScalerBank;

/// Scaler-slot ids used by the generated kernels.
pub mod slots {
    /// Slot 0: −η (negative learning rate).
    pub const NEG_LR: u8 = 0;
    /// Slot 1: α (momentum decay).
    pub const MOMENTUM: u8 = 1;
    /// Slot 2: −ηβ (negative learning rate × weight decay).
    pub const NEG_LR_WD: u8 = 2;
    /// Slot 3: +1 (identity; used for plain loads and the quantization
    /// kernel).
    pub const ONE: u8 = 3;
}

/// Why a kernel could not be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The optimizer is not expressible with the base GradPIM primitive set
    /// in a single pass (§VIII: Adam/AdaGrad/RMSprop need element-wise
    /// squares and square roots, which the add/sub ALU does not provide).
    UnsupportedOptimizer(OptimizerKind),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnsupportedOptimizer(k) => {
                write!(f, "{k} is not expressible with the base GradPIM ALU (see §VIII)")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// The command stream destined for one GradPIM unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitStream {
    /// Channel of the unit.
    pub channel: usize,
    /// Rank of the unit.
    pub rank: u8,
    /// Bank group of the unit.
    pub bankgroup: u8,
    /// In-order micro-ops.
    pub ops: Vec<PimOp>,
}

/// Static op-count analytics for a compiled step (drives the performance
/// model and the Fig. 11 command-pressure analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Scaled reads.
    pub scaled_reads: u64,
    /// Writebacks.
    pub writebacks: u64,
    /// Parallel adds/subs.
    pub alu_ops: u64,
    /// Quantization-register loads/stores.
    pub qreg_moves: u64,
    /// Quant + dequant ALU ops.
    pub quant_ops: u64,
}

impl KernelCounts {
    /// Total commands.
    pub fn total(&self) -> u64 {
        self.scaled_reads + self.writebacks + self.alu_ops + self.qreg_moves + self.quant_ops
    }

    /// Commands that move a column through the bank-group I/O.
    pub fn column_moves(&self) -> u64 {
        self.scaled_reads + self.writebacks + self.qreg_moves
    }
}

/// A compiled update step: per-unit streams plus the scaler programming.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// Streams, one per participating unit.
    pub streams: Vec<UnitStream>,
    /// The scaler values the step expects in the mode registers.
    pub scalers: ScalerBank,
    /// Op-count analytics.
    pub counts: KernelCounts,
}

/// Which of the three §IV-D sub-kernels to emit.
///
/// The paper's update-phase measurements time the Fig. 5 (middle) update
/// procedure; dequantization overlaps the tail of the backward pass (Q(g)
/// columns dequantize as they arrive) and quantization overlaps the next
/// forward pass (Q(θ) columns stream out as they are consumed), so the
/// system simulator schedules them concurrently with those phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParts {
    /// Emit the Fig. 5 (top) dequantization kernel.
    pub dequant: bool,
    /// Emit the Fig. 5 (middle) parameter-update kernel.
    pub update: bool,
    /// Emit the Fig. 5 (bottom) quantization kernel.
    pub quant: bool,
}

impl KernelParts {
    /// Every sub-kernel (the [`compile_step`] default).
    pub const ALL: Self = Self { dequant: true, update: true, quant: true };
    /// The update procedure only (the paper's timed update phase).
    pub const UPDATE_ONLY: Self = Self { dequant: false, update: true, quant: false };
    /// Quantization + dequantization only (overlapped with fwd/bwd).
    pub const QUANT_DEQUANT: Self = Self { dequant: true, update: false, quant: true };
}

/// Compiles the scaler bank for `optimizer` under `hyper`.
///
/// # Errors
///
/// [`KernelError::UnsupportedOptimizer`] for optimizers outside the base
/// primitive set.
pub fn scaler_bank_for(
    optimizer: OptimizerKind,
    hyper: &HyperParams,
) -> Result<ScalerBank, KernelError> {
    if !optimizer.single_pass() {
        return Err(KernelError::UnsupportedOptimizer(optimizer));
    }
    let lr = hyper.lr as f64;
    let alpha = hyper.momentum as f64;
    let wd = hyper.weight_decay as f64;
    Ok(ScalerBank::program([-lr, alpha, -lr * wd, 1.0]))
}

/// Compiles one full training-step kernel (dequant → update → quant) for
/// every unit that owns part of the parameter group.
///
/// # Errors
///
/// [`KernelError::UnsupportedOptimizer`] for optimizers outside the base
/// primitive set.
pub fn compile_step(
    placement: &Placement,
    hyper: &HyperParams,
    cfg: &DramConfig,
) -> Result<StepPlan, KernelError> {
    compile_step_parts(placement, hyper, cfg, KernelParts::ALL)
}

/// Compiles the selected sub-kernels of one training step (see
/// [`KernelParts`]).
///
/// # Errors
///
/// [`KernelError::UnsupportedOptimizer`] for optimizers outside the base
/// primitive set.
pub fn compile_step_parts(
    placement: &Placement,
    hyper: &HyperParams,
    cfg: &DramConfig,
    parts: KernelParts,
) -> Result<StepPlan, KernelError> {
    // Quant/dequant-only compilations need just the identity scaler slot,
    // so they work for any optimizer (the adaptive ones run their update
    // through `crate::xalu` instead).
    let scalers = if parts.update {
        scaler_bank_for(placement.optimizer(), hyper)?
    } else {
        ScalerBank::program([0.0, 0.0, 0.0, 1.0])
    };
    let mixed = placement.mix().is_mixed();
    let ratio = placement.mix().quant_ratio();
    let mut counts = KernelCounts::default();

    // Group chunks by owning unit.
    let mut streams: Vec<UnitStream> = Vec::new();
    for chunk in placement.chunks(cfg) {
        let idx = streams
            .iter()
            .position(|s| {
                s.channel == chunk.channel && s.rank == chunk.rank && s.bankgroup == chunk.bankgroup
            })
            .unwrap_or_else(|| {
                streams.push(UnitStream {
                    channel: chunk.channel,
                    rank: chunk.rank,
                    bankgroup: chunk.bankgroup,
                    ops: Vec::new(),
                });
                streams.len() - 1
            });
        let ops = &mut streams[idx].ops;
        if mixed && parts.dequant {
            emit_dequant(placement, &chunk, ratio, ops, &mut counts);
        }
        if parts.update {
            emit_update(placement, hyper, &chunk, ops, &mut counts);
        }
        if mixed && parts.quant {
            emit_quant(placement, &chunk, ratio, ops, &mut counts);
        }
    }
    Ok(StepPlan { streams, scalers, counts })
}

/// Fig. 5 (top): dequantize `Q(g)` into `g` for one chunk.
fn emit_dequant(
    p: &Placement,
    chunk: &Chunk,
    ratio: usize,
    ops: &mut Vec<PimOp>,
    counts: &mut KernelCounts,
) {
    let qg = *p.array(ArrayName::QGrad);
    let g = *p.array(ArrayName::Grad);
    let g_row = g.base_row + chunk.row_offset;
    let q_row = qg.base_row + chunk.row_offset;
    let qcols = (chunk.cols as usize).div_ceil(ratio) as u32;
    for qcol in 0..qcols {
        // ① load one column of Q(g) into the quantization register.
        ops.push(PimOp::QRegLoad { bank: qg.bank, row: q_row, col: qcol });
        counts.qreg_moves += 1;
        // ② dequantize each slice and write the master column back.
        for pos in 0..ratio as u32 {
            let col = qcol * ratio as u32 + pos;
            if col >= chunk.cols {
                break;
            }
            ops.push(PimOp::Dequant { bank: g.bank, pos: pos as u8, dst: 0 });
            ops.push(PimOp::Writeback { bank: g.bank, row: g_row, col, src: 0 });
            counts.quant_ops += 1;
            counts.writebacks += 1;
        }
    }
}

/// Fig. 5 (middle): the update procedure for one chunk.
fn emit_update(
    p: &Placement,
    hyper: &HyperParams,
    chunk: &Chunk,
    ops: &mut Vec<PimOp>,
    counts: &mut KernelCounts,
) {
    let theta = *p.array(ArrayName::Theta);
    let grad = *p.array(ArrayName::Grad);
    let t_row = theta.base_row + chunk.row_offset;
    let g_row = grad.base_row + chunk.row_offset;
    match p.optimizer() {
        OptimizerKind::Sgd => {
            let wd = hyper.weight_decay != 0.0;
            for col in 0..chunk.cols {
                // R0 ← −η·g
                ops.push(PimOp::ScaledRead {
                    bank: grad.bank,
                    row: g_row,
                    col,
                    scaler: slots::NEG_LR,
                    dst: 0,
                });
                counts.scaled_reads += 1;
                if wd {
                    // R1 ← −ηβ·θ ; R0 ← R0 + R1
                    ops.push(PimOp::ScaledRead {
                        bank: theta.bank,
                        row: t_row,
                        col,
                        scaler: slots::NEG_LR_WD,
                        dst: 1,
                    });
                    ops.push(PimOp::Add { bank: theta.bank, dst: 0 });
                    counts.scaled_reads += 1;
                    counts.alu_ops += 1;
                }
                // R1 ← θ ; R1 ← R0 + R1 ; θ ← R1
                ops.push(PimOp::ScaledRead {
                    bank: theta.bank,
                    row: t_row,
                    col,
                    scaler: slots::ONE,
                    dst: 1,
                });
                ops.push(PimOp::Add { bank: theta.bank, dst: 1 });
                ops.push(PimOp::Writeback { bank: theta.bank, row: t_row, col, src: 1 });
                counts.scaled_reads += 1;
                counts.alu_ops += 1;
                counts.writebacks += 1;
            }
        }
        OptimizerKind::MomentumSgd => {
            let vel = *p.array(ArrayName::State0);
            let v_row = vel.base_row + chunk.row_offset;
            let wd = hyper.weight_decay != 0.0;
            for col in 0..chunk.cols {
                // ① R0 ← −η·g ; R1 ← α·v
                ops.push(PimOp::ScaledRead {
                    bank: grad.bank,
                    row: g_row,
                    col,
                    scaler: slots::NEG_LR,
                    dst: 0,
                });
                ops.push(PimOp::ScaledRead {
                    bank: vel.bank,
                    row: v_row,
                    col,
                    scaler: slots::MOMENTUM,
                    dst: 1,
                });
                counts.scaled_reads += 2;
                // ② R1 ← R0 + R1 (= αv − ηg)
                ops.push(PimOp::Add { bank: vel.bank, dst: 1 });
                counts.alu_ops += 1;
                if wd {
                    // ③ R0 ← −ηβ·θ ; ④ R1 ← R0 + R1 (= v_t, Eq. 4)
                    ops.push(PimOp::ScaledRead {
                        bank: theta.bank,
                        row: t_row,
                        col,
                        scaler: slots::NEG_LR_WD,
                        dst: 0,
                    });
                    ops.push(PimOp::Add { bank: theta.bank, dst: 1 });
                    counts.scaled_reads += 1;
                    counts.alu_ops += 1;
                }
                // ⑤ v ← R1
                ops.push(PimOp::Writeback { bank: vel.bank, row: v_row, col, src: 1 });
                counts.writebacks += 1;
                // ⑥ R0 ← θ ; R0 ← R0 + R1 (= θ + v_t, Eq. 3) ; θ ← R0
                ops.push(PimOp::ScaledRead {
                    bank: theta.bank,
                    row: t_row,
                    col,
                    scaler: slots::ONE,
                    dst: 0,
                });
                ops.push(PimOp::Add { bank: theta.bank, dst: 0 });
                ops.push(PimOp::Writeback { bank: theta.bank, row: t_row, col, src: 0 });
                counts.scaled_reads += 1;
                counts.alu_ops += 1;
                counts.writebacks += 1;
            }
        }
        OptimizerKind::Nag => {
            let vel = *p.array(ArrayName::State0);
            let v_row = vel.base_row + chunk.row_offset;
            for col in 0..chunk.cols {
                // v_t = α·v − η·g
                ops.push(PimOp::ScaledRead {
                    bank: grad.bank,
                    row: g_row,
                    col,
                    scaler: slots::NEG_LR,
                    dst: 0,
                });
                ops.push(PimOp::ScaledRead {
                    bank: vel.bank,
                    row: v_row,
                    col,
                    scaler: slots::MOMENTUM,
                    dst: 1,
                });
                ops.push(PimOp::Add { bank: vel.bank, dst: 1 });
                ops.push(PimOp::Writeback { bank: vel.bank, row: v_row, col, src: 1 });
                // θ' = θ + α·v_t − η·g : reread the just-written v_t scaled
                // by α (the row is open; the register transfer ordering is
                // guaranteed by the in-order unit queue).
                ops.push(PimOp::ScaledRead {
                    bank: vel.bank,
                    row: v_row,
                    col,
                    scaler: slots::MOMENTUM,
                    dst: 1,
                });
                ops.push(PimOp::Add { bank: vel.bank, dst: 1 }); // R1 = αv_t − ηg... R0 still −ηg
                ops.push(PimOp::ScaledRead {
                    bank: theta.bank,
                    row: t_row,
                    col,
                    scaler: slots::ONE,
                    dst: 0,
                });
                ops.push(PimOp::Add { bank: theta.bank, dst: 0 });
                ops.push(PimOp::Writeback { bank: theta.bank, row: t_row, col, src: 0 });
                counts.scaled_reads += 4;
                counts.alu_ops += 3;
                counts.writebacks += 2;
            }
        }
        other => unreachable!("scaler_bank_for already rejected {other}"),
    }
}

/// Fig. 5 (bottom): quantize θ into `Q(θ)` for one chunk.
fn emit_quant(
    p: &Placement,
    chunk: &Chunk,
    ratio: usize,
    ops: &mut Vec<PimOp>,
    counts: &mut KernelCounts,
) {
    let qt = *p.array(ArrayName::QTheta);
    let theta = *p.array(ArrayName::Theta);
    let t_row = theta.base_row + chunk.row_offset;
    let q_row = qt.base_row + chunk.row_offset;
    let qcols = (chunk.cols as usize).div_ceil(ratio) as u32;
    for qcol in 0..qcols {
        // ① load and quantize ratio columns of θ.
        for pos in 0..ratio as u32 {
            let col = qcol * ratio as u32 + pos;
            if col >= chunk.cols {
                break;
            }
            ops.push(PimOp::ScaledRead {
                bank: theta.bank,
                row: t_row,
                col,
                scaler: slots::ONE,
                dst: 0,
            });
            ops.push(PimOp::Quant { bank: theta.bank, pos: pos as u8, src: 0 });
            counts.scaled_reads += 1;
            counts.quant_ops += 1;
        }
        // ② write the filled quantization register to Q(θ).
        ops.push(PimOp::QRegStore { bank: qt.bank, row: q_row, col: qcol });
        counts.qreg_moves += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradpim_dram::DramConfig;
    use gradpim_optim::PrecisionMix;

    fn plan(optimizer: OptimizerKind, mix: PrecisionMix, n: usize) -> StepPlan {
        let cfg = DramConfig::ddr4_2133();
        let placement = Placement::for_optimizer(optimizer, mix, n, &cfg).unwrap();
        compile_step(&placement, &HyperParams::default(), &cfg).unwrap()
    }

    #[test]
    fn momentum_with_wd_is_nine_ops_per_column_plus_quant() {
        // One full chunk = 128 columns in one bank group.
        let p = plan(OptimizerKind::MomentumSgd, PrecisionMix::MIXED_8_32, 2048);
        assert_eq!(p.streams.len(), 1);
        let cols = 128u64;
        // Update: 4 SR + 3 Add + 2 WB per column (Fig. 5 steps ①–⑥ with
        // weight decay).
        // Dequant: (1 QRegLoad)/4 + 1 Dequant + 1 WB per column.
        // Quant: 1 SR + 1 Quant per column + (1 QRegStore)/4.
        assert_eq!(p.counts.scaled_reads, cols * (4 + 1));
        assert_eq!(p.counts.alu_ops, cols * 3);
        assert_eq!(p.counts.writebacks, cols * (2 + 1));
        assert_eq!(p.counts.qreg_moves, cols / 4 * 2);
        assert_eq!(p.counts.quant_ops, cols * 2);
        // Total per column: 9 + 2.25 + 2.25 = 13.5.
        assert_eq!(p.counts.total(), cols * 13 + cols / 2);
    }

    #[test]
    fn momentum_without_wd_drops_two_ops_per_column() {
        let cfg = DramConfig::ddr4_2133();
        let placement = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            2048,
            &cfg,
        )
        .unwrap();
        let hyper = HyperParams { weight_decay: 0.0, ..Default::default() };
        let p = compile_step(&placement, &hyper, &cfg).unwrap();
        assert_eq!(p.counts.scaled_reads, 128 * 4); // 3 update + 1 quant
        assert_eq!(p.counts.alu_ops, 128 * 2);
    }

    #[test]
    fn full_precision_skips_quant_kernels() {
        let p = plan(OptimizerKind::MomentumSgd, PrecisionMix::FULL_32, 2048);
        assert_eq!(p.counts.qreg_moves, 0);
        assert_eq!(p.counts.quant_ops, 0);
        // Columns: 2048 f32 = 128 cols. 4 SR + 3 Add + 2 WB each.
        assert_eq!(p.counts.total(), 128 * 9);
    }

    #[test]
    fn streams_cover_all_bankgroups_for_large_arrays() {
        // 2048 × 16 chunks = all 4 bank groups × 4 ranks.
        let p = plan(OptimizerKind::MomentumSgd, PrecisionMix::MIXED_8_32, 2048 * 16);
        assert_eq!(p.streams.len(), 16);
        let mut pairs: Vec<_> = p.streams.iter().map(|s| (s.rank, s.bankgroup)).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), 16);
    }

    #[test]
    fn adaptive_optimizers_rejected_by_base_isa() {
        let cfg = DramConfig::ddr4_2133();
        for opt in [OptimizerKind::Adam, OptimizerKind::AdaGrad, OptimizerKind::RmsProp] {
            let placement =
                Placement::for_optimizer(opt, PrecisionMix::MIXED_8_32, 1000, &cfg).unwrap();
            let err = compile_step(&placement, &HyperParams::default(), &cfg).unwrap_err();
            assert_eq!(err, KernelError::UnsupportedOptimizer(opt));
        }
    }

    #[test]
    fn scaler_bank_encodes_hyperparams() {
        let hyper =
            HyperParams { lr: 0.01, momentum: 0.9, weight_decay: 1e-4, ..Default::default() };
        let bank = scaler_bank_for(OptimizerKind::MomentumSgd, &hyper).unwrap();
        let f = bank.to_mode_floats();
        assert!(f[0] < 0.0 && (f[0] + 0.01).abs() / 0.01 < 0.05);
        assert!((f[1] - 0.9).abs() / 0.9 < 0.05);
        assert!(f[2] <= 0.0);
        assert_eq!(f[3], 1.0);
    }

    #[test]
    fn dequant_ops_interleave_qreg_loads_every_ratio_columns() {
        let p = plan(OptimizerKind::Sgd, PrecisionMix::MIXED_8_32, 2048);
        let ops = &p.streams[0].ops;
        // First op of the stream must be a QRegLoad (cannot dequantize an
        // empty register).
        assert!(matches!(ops[0], PimOp::QRegLoad { .. }));
        // Between consecutive QRegLoads there are exactly 8 ops
        // (4 × [Dequant, Writeback]).
        let loads: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, PimOp::QRegLoad { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(loads.len(), 32);
        for w in loads.windows(2) {
            assert_eq!(w[1] - w[0], 9);
        }
    }

    #[test]
    fn sgd_stream_shape() {
        let cfg = DramConfig::ddr4_2133();
        let placement =
            Placement::for_optimizer(OptimizerKind::Sgd, PrecisionMix::FULL_32, 16, &cfg).unwrap();
        let hyper = HyperParams { weight_decay: 0.0, ..Default::default() };
        let p = compile_step(&placement, &hyper, &cfg).unwrap();
        // 16 f32 = 1 column: SR g, SR θ, Add, WB θ.
        assert_eq!(
            p.streams[0].ops,
            vec![
                PimOp::ScaledRead { bank: 1, row: 0, col: 0, scaler: slots::NEG_LR, dst: 0 },
                PimOp::ScaledRead { bank: 0, row: 0, col: 0, scaler: slots::ONE, dst: 1 },
                PimOp::Add { bank: 0, dst: 1 },
                PimOp::Writeback { bank: 0, row: 0, col: 0, src: 1 },
            ]
        );
    }
}
