//! The GradPIM scaler: `±(2ⁿ ± 2ᵐ)` hyper-parameter approximation (§IV-B).
//!
//! "To simplify the scaler, we approximate the scaler values in 2ⁿ ± 2ᵐ and
//! implement the scaler with shifters and adders. The values of n and m
//! assigned to each opcode can be programmed with MRW."
//!
//! [`ScalerValue::approximate`] finds the best such approximation for an
//! arbitrary hyper-parameter; [`ScalerBank`] models the four MRW-programmable
//! slots a GradPIM unit pins.

/// One shifter-adder-expressible constant: `sign × (2ⁿ ± 2ᵐ)`, or a pure
/// power of two / zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalerValue {
    /// Overall sign (+1 or −1).
    pub sign: i8,
    /// Exponent of the leading term.
    pub n: i32,
    /// Optional second term: (exponent, `true` = add, `false` = subtract).
    pub m: Option<(i32, bool)>,
    /// `true` for the exact-zero scaler.
    pub zero: bool,
}

/// Exponent search range. ±38 covers every finite f32 hyper-parameter
/// magnitude of practical interest (η, α, β all live in [1e-8, 10]).
const EXP_RANGE: std::ops::RangeInclusive<i32> = -40..=40;

impl ScalerValue {
    /// The exact constant 1.0 (identity scale).
    pub const ONE: ScalerValue = ScalerValue { sign: 1, n: 0, m: None, zero: false };

    /// The exact constant 0.0.
    pub const ZERO: ScalerValue = ScalerValue { sign: 1, n: 0, m: None, zero: true };

    /// A pure power of two `sign × 2ⁿ`.
    pub fn pow2(sign: i8, n: i32) -> Self {
        Self { sign, n, m: None, zero: false }
    }

    /// The represented value.
    pub fn value(&self) -> f64 {
        if self.zero {
            return 0.0;
        }
        let lead = 2f64.powi(self.n);
        let v = match self.m {
            None => lead,
            Some((m, true)) => lead + 2f64.powi(m),
            Some((m, false)) => lead - 2f64.powi(m),
        };
        self.sign as f64 * v
    }

    /// Finds the best `±(2ⁿ ± 2ᵐ)` approximation of `target`.
    ///
    /// Exact zeros map to [`ScalerValue::ZERO`]. The search minimizes
    /// relative error; by construction the worst case is ≈ 9.1 % (midway
    /// between 1.25·2ᵏ and 1.5·2ᵏ) and common hyper-parameters do far
    /// better (η = 0.01 → 2⁻⁷ + 2⁻⁹, 2.4 % error).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not finite.
    pub fn approximate(target: f64) -> Self {
        assert!(target.is_finite(), "scaler target must be finite, got {target}");
        if target == 0.0 {
            return Self::ZERO;
        }
        let sign: i8 = if target > 0.0 { 1 } else { -1 };
        let mag = target.abs();
        let mut best = Self::pow2(sign, 0);
        let mut best_err = f64::INFINITY;
        let mut consider = |cand: ScalerValue| {
            let v = cand.value().abs();
            if v <= 0.0 {
                return;
            }
            let err = (v - mag).abs() / mag;
            if err < best_err {
                best_err = err;
                best = cand;
            }
        };
        // The leading exponent must be within a factor of 2 of the target.
        let n0 = mag.log2().floor() as i32;
        for n in (n0 - 1)..=(n0 + 1) {
            if !EXP_RANGE.contains(&n) {
                continue;
            }
            consider(Self::pow2(sign, n));
            for m in (n - 24)..n {
                if !EXP_RANGE.contains(&m) {
                    continue;
                }
                consider(Self { sign, n, m: Some((m, true)), zero: false });
                consider(Self { sign, n, m: Some((m, false)), zero: false });
            }
        }
        best
    }

    /// Relative approximation error against `target`.
    pub fn rel_error(&self, target: f64) -> f64 {
        if target == 0.0 {
            return if self.zero { 0.0 } else { f64::INFINITY };
        }
        (self.value() - target).abs() / target.abs()
    }
}

impl std::fmt::Display for ScalerValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.zero {
            return write!(f, "0");
        }
        let s = if self.sign < 0 { "-" } else { "" };
        match self.m {
            None => write!(f, "{s}2^{}", self.n),
            Some((m, true)) => write!(f, "{s}(2^{} + 2^{})", self.n, m),
            Some((m, false)) => write!(f, "{s}(2^{} - 2^{})", self.n, m),
        }
    }
}

/// The four MRW-programmable scaler slots of a GradPIM unit (§IV-B: "we pin
/// four scaler values to an id").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalerBank {
    slots: [ScalerValue; 4],
}

impl ScalerBank {
    /// Programs the four slots from exact hyper-parameter targets,
    /// approximating each.
    pub fn program(targets: [f64; 4]) -> Self {
        Self { slots: targets.map(ScalerValue::approximate) }
    }

    /// The slot values as `f32` constants for the DRAM mode registers.
    pub fn to_mode_floats(&self) -> [f32; 4] {
        [
            self.slots[0].value() as f32,
            self.slots[1].value() as f32,
            self.slots[2].value() as f32,
            self.slots[3].value() as f32,
        ]
    }

    /// Slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 3`.
    pub fn slot(&self, i: usize) -> ScalerValue {
        self.slots[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_powers_of_two_are_exact() {
        for e in [-10, -3, 0, 4, 12] {
            let v = 2f64.powi(e);
            for sign in [1.0, -1.0] {
                let s = ScalerValue::approximate(sign * v);
                assert_eq!(s.value(), sign * v);
                assert_eq!(s.rel_error(sign * v), 0.0);
            }
        }
    }

    #[test]
    fn zero_is_exact() {
        let s = ScalerValue::approximate(0.0);
        assert_eq!(s.value(), 0.0);
        assert!(s.zero);
    }

    #[test]
    fn learning_rate_001_within_three_percent() {
        // The paper's example hyper-parameter η = 0.01 (§III-A).
        let s = ScalerValue::approximate(0.01);
        assert!(s.rel_error(0.01) < 0.03, "{} err {}", s, s.rel_error(0.01));
    }

    #[test]
    fn momentum_09_uses_sub_form() {
        // 0.9 ≈ 2⁰ − 2⁻³ = 0.875 (2.8 %).
        let s = ScalerValue::approximate(0.9);
        assert!(s.rel_error(0.9) < 0.03, "{} err {}", s, s.rel_error(0.9));
    }

    #[test]
    fn sum_and_difference_forms_are_exact_when_representable() {
        // 0.75 = 2⁻¹ + 2⁻², 1.75 = 2¹ − 2⁻², -0.625 = -(2⁻¹ + 2⁻³).
        for target in [0.75, 1.75, -0.625, 3.0, -6.0, 0.046875] {
            let s = ScalerValue::approximate(target);
            assert_eq!(s.value(), target, "{target} → {s}");
        }
    }

    #[test]
    fn worst_case_error_bound() {
        // Dense scan: the ±(2ⁿ ± 2ᵐ) lattice never exceeds ~9.1 % relative
        // error.
        let mut worst: f64 = 0.0;
        for i in 1..20_000 {
            let target = i as f64 * 1e-4;
            let s = ScalerValue::approximate(target);
            worst = worst.max(s.rel_error(target));
        }
        assert!(worst < 0.0910, "worst error {worst}");
    }

    #[test]
    fn negative_targets_preserve_sign() {
        let s = ScalerValue::approximate(-0.01);
        assert!(s.value() < 0.0);
        assert!(s.rel_error(-0.01) < 0.03);
    }

    #[test]
    fn bank_programs_four_slots() {
        // Momentum SGD slots: −η, α, −ηβ, +1.
        let bank = ScalerBank::program([-0.01, 0.9, -1e-6, 1.0]);
        let f = bank.to_mode_floats();
        assert!(f[0] < 0.0 && (f[0] + 0.01).abs() < 0.01 * 0.1);
        assert!((f[1] - 0.9).abs() < 0.9 * 0.05);
        assert!(f[2] < 0.0);
        assert_eq!(f[3], 1.0);
        assert_eq!(bank.slot(3), ScalerValue::ONE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ScalerValue::approximate(0.875).to_string(), "(2^0 - 2^-3)");
        assert_eq!(ScalerValue::pow2(-1, -2).to_string(), "-2^-2");
        assert_eq!(ScalerValue::ZERO.to_string(), "0");
    }
}
