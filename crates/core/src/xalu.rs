//! Extended-ALU kernels for adaptive optimizers (§VIII "Supporting Other
//! Kinds of Parameter Update Algorithms").
//!
//! The paper's base ALU supports add/sub only, which covers the momentum
//! family; §VIII notes that algorithms with decaying factors or second-order
//! momentum (Adam, AdaGrad, RMSprop) "require more complexity", can use the
//! spare banks of the bank group for extra state, run "in multiple passes",
//! and need "change in the ALU of the GradPIM unit". This module implements
//! that extension:
//!
//! * two new ALU ops — parallel multiply and reciprocal square root — behind
//!   `DramConfig::extended_alu`;
//! * a two-pass Adam kernel with MRW scaler reprogramming between passes
//!   (pass 1 updates both moment arrays, pass 2 applies the bias-corrected
//!   step), following the paper's sketch exactly: four banks hold θ, g, m,
//!   u, and the intermediate values never leave the bank group.
//!
//! Pass structure per column (momentum-SGD baseline is 9 ops — the §VIII
//! prediction "slightly degrade the speedup" lands at 17 ops):
//!
//! ```text
//! pass 1 (slots: β₁, 1−β₁, β₂, √(1−β₂)):
//!   SR m×β₁→R0; SR g×(1−β₁)→R1; Add→R0; WB m            (m ← β₁m + (1−β₁)g)
//!   SR g×√(1−β₂)→R0; SR g×√(1−β₂)→R1; Mul→R1;
//!   SR u×β₂→R0; Add→R0; WB u                            (u ← β₂u + (1−β₂)g²)
//! pass 2 (slots: −a_t, ·, ·, 1), a_t = η·√(1−β₂ᵗ)/(1−β₁ᵗ):
//!   SR u×1→R0; Rsqrt→R0; SR m×(−a_t)→R1; Mul→R0;
//!   SR θ×1→R1; Add→R1; WB θ                             (θ ← θ − a_t·m/√(u+ε))
//! ```

use gradpim_dram::{DramConfig, PimOp};
use gradpim_optim::{HyperParams, OptimizerKind};

use crate::kernel::{KernelCounts, KernelError, UnitStream};
use crate::placement::{ArrayName, Placement};
use crate::scaler::ScalerBank;

/// A compiled two-pass adaptive-optimizer step.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamPlan {
    /// Pass-1 streams (moment updates).
    pub pass1: Vec<UnitStream>,
    /// Scaler programming for pass 1: (β₁, 1−β₁, β₂, √(1−β₂)).
    pub scalers1: ScalerBank,
    /// Pass-2 streams (bias-corrected weight update).
    pub pass2: Vec<UnitStream>,
    /// Scaler programming for pass 2: (−a_t, 0, 0, 1).
    pub scalers2: ScalerBank,
    /// Op counts over both passes.
    pub counts: KernelCounts,
}

/// The exact constants the hardware will use after ±(2ⁿ ± 2ᵐ)
/// approximation — exposed so references/tests can mirror the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConstants {
    /// Approximated β₁.
    pub beta1: f32,
    /// Approximated 1−β₁.
    pub one_minus_beta1: f32,
    /// Approximated β₂.
    pub beta2: f32,
    /// Approximated √(1−β₂).
    pub sqrt_one_minus_beta2: f32,
    /// Approximated −a_t (negative bias-corrected step size).
    pub neg_step: f32,
}

/// Computes the bias-corrected step size `a_t` for step `t` (1-based).
pub fn adam_step_size(hyper: &HyperParams, t: u64) -> f64 {
    let b1 = hyper.beta1 as f64;
    let b2 = hyper.beta2 as f64;
    let t = t.max(1) as i32;
    hyper.lr as f64 * (1.0 - b2.powi(t)).sqrt() / (1.0 - b1.powi(t))
}

/// The scaler banks for both passes at step `t`, plus the approximated
/// constants.
pub fn adam_scalers(hyper: &HyperParams, t: u64) -> (ScalerBank, ScalerBank, AdamConstants) {
    let b1 = hyper.beta1 as f64;
    let b2 = hyper.beta2 as f64;
    let s1 = ScalerBank::program([b1, 1.0 - b1, b2, (1.0 - b2).sqrt()]);
    let a_t = adam_step_size(hyper, t);
    let s2 = ScalerBank::program([-a_t, 0.0, 0.0, 1.0]);
    let f1 = s1.to_mode_floats();
    let f2 = s2.to_mode_floats();
    let consts = AdamConstants {
        beta1: f1[0],
        one_minus_beta1: f1[1],
        beta2: f1[2],
        sqrt_one_minus_beta2: f1[3],
        neg_step: f2[0],
    };
    (s1, s2, consts)
}

/// Compiles the two-pass Adam step for step number `t` (1-based, for bias
/// correction).
///
/// # Errors
///
/// [`KernelError::UnsupportedOptimizer`] if the placement is not for Adam
/// or the device lacks the extended ALU.
pub fn compile_adam(
    placement: &Placement,
    hyper: &HyperParams,
    t: u64,
    cfg: &DramConfig,
) -> Result<AdamPlan, KernelError> {
    if placement.optimizer() != OptimizerKind::Adam || !cfg.extended_alu {
        return Err(KernelError::UnsupportedOptimizer(placement.optimizer()));
    }
    let (scalers1, scalers2, _) = adam_scalers(hyper, t);
    let theta = *placement.array(ArrayName::Theta);
    let grad = *placement.array(ArrayName::Grad);
    let m = *placement.array(ArrayName::State0);
    let u = *placement.array(ArrayName::State1);

    let mut counts = KernelCounts::default();
    let mut pass1: Vec<UnitStream> = Vec::new();
    let mut pass2: Vec<UnitStream> = Vec::new();
    for chunk in placement.chunks(cfg) {
        let find = |streams: &mut Vec<UnitStream>| -> usize {
            streams
                .iter()
                .position(|s| {
                    s.channel == chunk.channel
                        && s.rank == chunk.rank
                        && s.bankgroup == chunk.bankgroup
                })
                .unwrap_or_else(|| {
                    streams.push(UnitStream {
                        channel: chunk.channel,
                        rank: chunk.rank,
                        bankgroup: chunk.bankgroup,
                        ops: Vec::new(),
                    });
                    streams.len() - 1
                })
        };
        let t_row = theta.base_row + chunk.row_offset;
        let g_row = grad.base_row + chunk.row_offset;
        let m_row = m.base_row + chunk.row_offset;
        let u_row = u.base_row + chunk.row_offset;

        let i1 = find(&mut pass1);
        for col in 0..chunk.cols {
            let ops = &mut pass1[i1].ops;
            // m ← β₁·m + (1−β₁)·g
            ops.push(PimOp::ScaledRead { bank: m.bank, row: m_row, col, scaler: 0, dst: 0 });
            ops.push(PimOp::ScaledRead { bank: grad.bank, row: g_row, col, scaler: 1, dst: 1 });
            ops.push(PimOp::Add { bank: m.bank, dst: 0 });
            ops.push(PimOp::Writeback { bank: m.bank, row: m_row, col, src: 0 });
            // u ← β₂·u + (√(1−β₂)·g)²
            ops.push(PimOp::ScaledRead { bank: grad.bank, row: g_row, col, scaler: 3, dst: 0 });
            ops.push(PimOp::ScaledRead { bank: grad.bank, row: g_row, col, scaler: 3, dst: 1 });
            ops.push(PimOp::Mul { bank: u.bank, dst: 1 });
            ops.push(PimOp::ScaledRead { bank: u.bank, row: u_row, col, scaler: 2, dst: 0 });
            ops.push(PimOp::Add { bank: u.bank, dst: 0 });
            ops.push(PimOp::Writeback { bank: u.bank, row: u_row, col, src: 0 });
            counts.scaled_reads += 5;
            counts.alu_ops += 3; // Add ×2 + Mul
            counts.writebacks += 2;
        }

        let i2 = find(&mut pass2);
        for col in 0..chunk.cols {
            let ops = &mut pass2[i2].ops;
            // θ ← θ + (−a_t)·m · 1/√(u+ε)
            ops.push(PimOp::ScaledRead { bank: u.bank, row: u_row, col, scaler: 3, dst: 0 });
            ops.push(PimOp::Rsqrt { bank: u.bank, dst: 0 });
            ops.push(PimOp::ScaledRead { bank: m.bank, row: m_row, col, scaler: 0, dst: 1 });
            ops.push(PimOp::Mul { bank: m.bank, dst: 0 });
            ops.push(PimOp::ScaledRead { bank: theta.bank, row: t_row, col, scaler: 3, dst: 1 });
            ops.push(PimOp::Add { bank: theta.bank, dst: 1 });
            ops.push(PimOp::Writeback { bank: theta.bank, row: t_row, col, src: 1 });
            counts.scaled_reads += 3;
            counts.alu_ops += 3; // Rsqrt + Mul + Add
            counts.writebacks += 1;
        }
    }
    Ok(AdamPlan { pass1, scalers1, pass2, scalers2, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradpim_optim::PrecisionMix;

    fn cfg_ext() -> DramConfig {
        let mut c = DramConfig::ddr4_2133();
        c.extended_alu = true;
        c
    }

    fn hyper() -> HyperParams {
        // Power-of-two-friendly betas: β₁ = 0.5, β₂ = 0.75 (= 2⁻¹ + 2⁻²),
        // √(1−β₂) = 0.5 — all exact in the scaler lattice.
        HyperParams { lr: 0.125, beta1: 0.5, beta2: 0.75, eps: 1e-8, ..Default::default() }
    }

    #[test]
    fn requires_extended_alu() {
        let base = DramConfig::ddr4_2133();
        let p = Placement::for_optimizer(OptimizerKind::Adam, PrecisionMix::FULL_32, 1024, &base)
            .unwrap();
        assert!(compile_adam(&p, &hyper(), 1, &base).is_err());
        assert!(compile_adam(&p, &hyper(), 1, &cfg_ext()).is_ok());
    }

    #[test]
    fn rejects_non_adam_placements() {
        let c = cfg_ext();
        let p =
            Placement::for_optimizer(OptimizerKind::MomentumSgd, PrecisionMix::FULL_32, 1024, &c)
                .unwrap();
        assert!(compile_adam(&p, &hyper(), 1, &c).is_err());
    }

    #[test]
    fn op_counts_are_seventeen_per_column() {
        let c = cfg_ext();
        let p =
            Placement::for_optimizer(OptimizerKind::Adam, PrecisionMix::FULL_32, 2048, &c).unwrap();
        let plan = compile_adam(&p, &hyper(), 1, &c).unwrap();
        let cols = 128u64;
        assert_eq!(plan.counts.scaled_reads, cols * 8);
        assert_eq!(plan.counts.writebacks, cols * 3);
        assert_eq!(plan.counts.alu_ops, cols * 6); // 2 Add + 1 Mul | Rsqrt + Mul + Add
        assert_eq!(plan.counts.total(), cols * 17);
    }

    #[test]
    fn scaler_constants_exact_for_pow2_betas() {
        let (_, _, consts) = adam_scalers(&hyper(), 1);
        assert_eq!(consts.beta1, 0.5);
        assert_eq!(consts.one_minus_beta1, 0.5);
        assert_eq!(consts.beta2, 0.75);
        assert_eq!(consts.sqrt_one_minus_beta2, 0.5);
    }

    #[test]
    fn bias_correction_converges_to_lr() {
        let h = hyper();
        // With β₁ = β₂-driven warmup the step size settles at η.
        let a_inf = adam_step_size(&h, 10_000);
        assert!((a_inf - h.lr as f64).abs() < 1e-6, "a_inf -> lr, got {a_inf}");
        // For the customary (0.9, 0.999) betas the combined correction
        // √(1−β₂ᵗ)/(1−β₁ᵗ) ramps from √(1−β₂)/(1−β₁) ≈ 0.32 up to 1: the
        // second-moment correction dominates early.
        let hd = HyperParams::default();
        let a1 = adam_step_size(&hd, 1);
        assert!((a1 / hd.lr as f64 - 0.316).abs() < 0.01, "a1 = {a1}");
        assert!(adam_step_size(&hd, 1_000) < adam_step_size(&hd, 100_000));
    }

    #[test]
    fn streams_cover_all_units() {
        let c = cfg_ext();
        let p = Placement::for_optimizer(OptimizerKind::Adam, PrecisionMix::FULL_32, 2048 * 16, &c)
            .unwrap();
        let plan = compile_adam(&p, &hyper(), 3, &c).unwrap();
        assert_eq!(plan.pass1.len(), 16);
        assert_eq!(plan.pass2.len(), 16);
    }
}
