//! Data placement for GradPIM parameter arrays (§V-B, Fig. 7).
//!
//! The update kernels require that for every parameter index `i`, the
//! corresponding elements of θ, g and the optimizer-state arrays sit in the
//! *same bank group but different banks*, so a GradPIM unit can hold all of
//! their rows open simultaneously. Under the Fig. 7 mapping (bank bits at
//! the MSB) this is achieved by aligning every array to the bank-region
//! boundary; this module assigns banks, computes row/column coordinates, and
//! provides functional load/store helpers.
//!
//! Quantized arrays cannot be element-aligned with their masters (their
//! elements are narrower), so per §V-B they use only the first
//! `1/quant_ratio` of each row: DRAM capacity is wasted, but every quantized
//! row corresponds 1:1 to a master row in the same bank group, and no
//! off-chip bandwidth is lost.

use gradpim_dram::{Address, AddressMapping, DramConfig, ElemKind, MemorySystem, ModeRegisters};
use gradpim_optim::{OptimizerKind, PrecisionMix};

/// Logical names for the DRAM-resident arrays of one parameter group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayName {
    /// Master weights θ.
    Theta,
    /// (Dequantized) gradients g.
    Grad,
    /// First optimizer-state array (momentum v / Adam m / AdaGrad h).
    State0,
    /// Second optimizer-state array (Adam u).
    State1,
    /// Quantized master weights Q(θ) — read by the NPU in forward/backward.
    QTheta,
    /// Quantized gradients Q(g) — written by the NPU in backward.
    QGrad,
}

/// One placed array: its bank within every bank group and its starting row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpec {
    /// Which array this is.
    pub name: ArrayName,
    /// Bank index within each bank group (the same in all groups).
    pub bank: u8,
    /// First row used in every bank of that index.
    pub base_row: u32,
    /// Element kind as stored.
    pub elem: ElemKind,
    /// `true` if this array packs into the first `1/ratio` of each row.
    pub quantized: bool,
}

/// Why a placement could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The optimizer needs more concurrently-open arrays than there are
    /// banks in a bank group.
    TooManyArrays {
        /// Arrays needed simultaneously.
        needed: usize,
        /// Banks available per group.
        banks: usize,
    },
    /// The parameter count does not fit the device.
    CapacityExceeded {
        /// Rows needed per bank.
        rows_needed: u64,
        /// Rows available per bank.
        rows: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::TooManyArrays { needed, banks } => {
                write!(
                    f,
                    "optimizer needs {needed} concurrent arrays but bank groups have {banks} banks"
                )
            }
            PlacementError::CapacityExceeded { rows_needed, rows } => {
                write!(f, "placement needs {rows_needed} rows/bank but device has {rows}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A chunk of the element space owned by one GradPIM unit: one row's worth
/// of elements in one bank group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Channel of the owning unit.
    pub channel: usize,
    /// Rank of the owning unit.
    pub rank: u8,
    /// Bank group of the owning unit.
    pub bankgroup: u8,
    /// Row offset from each array's `base_row`.
    pub row_offset: u32,
    /// First element index covered.
    pub elem_start: usize,
    /// Columns of master data in this chunk (≤ `cfg.columns`).
    pub cols: u32,
}

/// The complete placement of one parameter group (θ, g, state arrays, and
/// their quantized shadows) for a given optimizer and precision mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    mix: PrecisionMix,
    optimizer: OptimizerKind,
    n_params: usize,
    arrays: Vec<ArraySpec>,
    elems_per_col: usize,
    elems_per_chunk: usize,
    rows_span: u32,
}

fn high_elem(mix: PrecisionMix) -> ElemKind {
    match mix.high {
        gradpim_optim::Precision::Fp32 => ElemKind::F32,
        gradpim_optim::Precision::Fp16 => ElemKind::F16,
        gradpim_optim::Precision::Int8 => ElemKind::I8,
    }
}

fn low_elem(mix: PrecisionMix) -> ElemKind {
    match mix.low {
        gradpim_optim::Precision::Fp32 => ElemKind::F32,
        gradpim_optim::Precision::Fp16 => ElemKind::F16,
        gradpim_optim::Precision::Int8 => ElemKind::I8,
    }
}

impl Placement {
    /// Places the arrays for `optimizer` under `mix` on `cfg`.
    ///
    /// Bank assignment: θ → 0, g → 1, state arrays → 2, 3; quantized shadows
    /// go to the highest banks not used *in the same kernel phase*
    /// (dequantization touches Q(g)+g; quantization touches Q(θ)+θ; the
    /// update touches θ+g+state — see §IV-D).
    ///
    /// # Errors
    ///
    /// [`PlacementError`] if the optimizer's arrays cannot coexist or the
    /// device is too small.
    pub fn for_optimizer(
        optimizer: OptimizerKind,
        mix: PrecisionMix,
        n_params: usize,
        cfg: &DramConfig,
    ) -> Result<Self, PlacementError> {
        Self::for_optimizer_at(optimizer, mix, n_params, cfg, 0)
    }

    /// Like [`Placement::for_optimizer`], but starting at row `row_base` of
    /// every bank — used to stack multiple parameter groups (one per layer)
    /// in the same device; see [`crate::group::NetworkPimMemory`].
    ///
    /// # Errors
    ///
    /// [`PlacementError`] if the optimizer's arrays cannot coexist or the
    /// rows starting at `row_base` do not fit the device.
    pub fn for_optimizer_at(
        optimizer: OptimizerKind,
        mix: PrecisionMix,
        n_params: usize,
        cfg: &DramConfig,
        row_base: u32,
    ) -> Result<Self, PlacementError> {
        assert!(n_params > 0, "empty parameter group");
        let states = optimizer.state_arrays();
        // Update phase opens θ + g + states concurrently.
        let needed = 2 + states;
        if needed > cfg.banks_per_group {
            return Err(PlacementError::TooManyArrays { needed, banks: cfg.banks_per_group });
        }

        let high = high_elem(mix);
        let elems_per_col = cfg.burst_bytes / high.bytes();
        let elems_per_chunk = elems_per_col * cfg.columns;
        let chunk_count = n_params.div_ceil(elems_per_chunk);
        let chunks_per_row = cfg.channels * cfg.ranks * cfg.bankgroups;
        let rows_span = chunk_count.div_ceil(chunks_per_row) as u32;

        let mut arrays = vec![
            ArraySpec {
                name: ArrayName::Theta,
                bank: 0,
                base_row: row_base,
                elem: high,
                quantized: false,
            },
            ArraySpec {
                name: ArrayName::Grad,
                bank: 1,
                base_row: row_base,
                elem: high,
                quantized: false,
            },
        ];
        for s in 0..states {
            arrays.push(ArraySpec {
                name: if s == 0 { ArrayName::State0 } else { ArrayName::State1 },
                bank: (2 + s) as u8,
                base_row: row_base,
                elem: high,
                quantized: false,
            });
        }
        let mut rows_needed = rows_span as u64;
        if mix.is_mixed() {
            let low = low_elem(mix);
            // Q(g) must avoid g's bank (dequant phase); Q(θ) must avoid θ's
            // bank (quant phase). Place them in the two highest banks,
            // stacked above any state array sharing that bank.
            let qg_bank = (cfg.banks_per_group - 2) as u8;
            let qt_bank = (cfg.banks_per_group - 1) as u8;
            let base = if (qg_bank as usize) < 2 + states { rows_span } else { 0 };
            let base_t = if (qt_bank as usize) < 2 + states { rows_span } else { 0 };
            arrays.push(ArraySpec {
                name: ArrayName::QGrad,
                bank: qg_bank,
                base_row: row_base + base,
                elem: low,
                quantized: true,
            });
            arrays.push(ArraySpec {
                name: ArrayName::QTheta,
                bank: qt_bank,
                base_row: row_base + base_t,
                elem: low,
                quantized: true,
            });
            rows_needed += rows_span as u64; // worst case stacking
        }
        if row_base as u64 + rows_needed > cfg.rows as u64 {
            return Err(PlacementError::CapacityExceeded {
                rows_needed: row_base as u64 + rows_needed,
                rows: cfg.rows,
            });
        }
        Ok(Self { mix, optimizer, n_params, arrays, elems_per_col, elems_per_chunk, rows_span })
    }

    /// The precision mix this placement serves.
    pub fn mix(&self) -> PrecisionMix {
        self.mix
    }

    /// The optimizer this placement serves.
    pub fn optimizer(&self) -> OptimizerKind {
        self.optimizer
    }

    /// Parameter-group size.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// All placed arrays.
    pub fn arrays(&self) -> &[ArraySpec] {
        &self.arrays
    }

    /// Looks up one array.
    ///
    /// # Panics
    ///
    /// Panics if the array does not exist in this placement (e.g. `State1`
    /// for momentum SGD).
    pub fn array(&self, name: ArrayName) -> &ArraySpec {
        self.arrays
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("array {name:?} not present in this placement"))
    }

    /// Whether `name` exists in this placement.
    pub fn has_array(&self, name: ArrayName) -> bool {
        self.arrays.iter().any(|a| a.name == name)
    }

    /// Master elements per 64-byte column.
    pub fn elems_per_col(&self) -> usize {
        self.elems_per_col
    }

    /// Master elements per chunk (one row in one bank group).
    pub fn elems_per_chunk(&self) -> usize {
        self.elems_per_chunk
    }

    /// Rows each array spans per bank.
    pub fn rows_span(&self) -> u32 {
        self.rows_span
    }

    /// Total rows this placement occupies per bank *beyond its row base*
    /// (worst case: a quantized shadow stacked above a master array).
    pub fn rows_footprint(&self) -> u32 {
        if self.mix.is_mixed() {
            self.rows_span * 2
        } else {
            self.rows_span
        }
    }

    /// Enumerates the chunks of the element space in ownership order:
    /// bank groups cycle fastest, then ranks, then channels, then rows —
    /// exactly the Fig. 7 interleaving.
    pub fn chunks(&self, cfg: &DramConfig) -> Vec<Chunk> {
        let chunk_count = self.n_params.div_ceil(self.elems_per_chunk);
        let mut out = Vec::with_capacity(chunk_count);
        for c in 0..chunk_count {
            let bg = c % cfg.bankgroups;
            let rank = (c / cfg.bankgroups) % cfg.ranks;
            let ch = (c / cfg.bankgroups / cfg.ranks) % cfg.channels;
            let row = (c / (cfg.bankgroups * cfg.ranks * cfg.channels)) as u32;
            let elem_start = c * self.elems_per_chunk;
            let remaining = self.n_params - elem_start;
            let cols = remaining.min(self.elems_per_chunk).div_ceil(self.elems_per_col) as u32;
            out.push(Chunk {
                channel: ch,
                rank: rank as u8,
                bankgroup: bg as u8,
                row_offset: row,
                elem_start,
                cols,
            });
        }
        out
    }

    /// Linear address of the column holding master element
    /// `chunk.elem_start + col × elems_per_col` of `array`.
    pub fn col_addr(&self, array: &ArraySpec, chunk: &Chunk, col: u32, cfg: &DramConfig) -> u64 {
        debug_assert!(!array.quantized, "use quant_col_addr for quantized arrays");
        let loc = Address {
            channel: chunk.channel,
            rank: chunk.rank as usize,
            bankgroup: chunk.bankgroup as usize,
            bank: array.bank as usize,
            row: (array.base_row + chunk.row_offset) as usize,
            column: col as usize,
        };
        AddressMapping::GradPim.encode(loc, cfg)
    }

    /// Linear address of quantized column `qcol` of `array` for `chunk`
    /// (quantized arrays use the first `1/ratio` of each row).
    pub fn quant_col_addr(
        &self,
        array: &ArraySpec,
        chunk: &Chunk,
        qcol: u32,
        cfg: &DramConfig,
    ) -> u64 {
        debug_assert!(array.quantized, "use col_addr for master arrays");
        let loc = Address {
            channel: chunk.channel,
            rank: chunk.rank as usize,
            bankgroup: chunk.bankgroup as usize,
            bank: array.bank as usize,
            row: (array.base_row + chunk.row_offset) as usize,
            column: qcol as usize,
        };
        AddressMapping::GradPim.encode(loc, cfg)
    }

    /// Functional helper: writes `data` (f32 values) into a *master* array
    /// through the backdoor, following the chunk layout.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n_params`, storage is disabled, or the array
    /// is quantized.
    pub fn write_master(
        &self,
        mem: &mut MemorySystem,
        name: ArrayName,
        mode: &ModeRegisters,
        data: &[f32],
    ) {
        assert_eq!(data.len(), self.n_params, "array length mismatch");
        let array = *self.array(name);
        let cfg = mem.config().clone();
        for chunk in self.chunks(&cfg) {
            for col in 0..chunk.cols {
                let start = chunk.elem_start + col as usize * self.elems_per_col;
                let end = (start + self.elems_per_col).min(self.n_params);
                let mut lane = data[start..end].to_vec();
                lane.resize(self.elems_per_col, 0.0);
                let bytes = mode.encode_high(&lane);
                mem.poke(self.col_addr(&array, &chunk, col, &cfg), &bytes);
            }
        }
    }

    /// Functional helper: reads a master array back as f32 values.
    ///
    /// # Panics
    ///
    /// Panics if storage is disabled or the array is quantized.
    pub fn read_master(
        &self,
        mem: &MemorySystem,
        name: ArrayName,
        mode: &ModeRegisters,
    ) -> Vec<f32> {
        let array = *self.array(name);
        let cfg = mem.config().clone();
        let mut out = Vec::with_capacity(self.n_params);
        for chunk in self.chunks(&cfg) {
            for col in 0..chunk.cols {
                let bytes = mem.peek(self.col_addr(&array, &chunk, col, &cfg), cfg.burst_bytes);
                let lane = mode.decode_high(&bytes);
                for v in lane {
                    if out.len() < self.n_params {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Functional helper: quantizes `data` with the mode registers' low
    /// format and writes it into a *quantized* array (as the NPU does with
    /// gradients after the backward pass).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, storage is disabled, or the array is not
    /// quantized.
    pub fn write_quantized(
        &self,
        mem: &mut MemorySystem,
        name: ArrayName,
        mode: &ModeRegisters,
        data: &[f32],
    ) {
        assert_eq!(data.len(), self.n_params, "array length mismatch");
        let array = *self.array(name);
        assert!(array.quantized, "{name:?} is not quantized");
        let cfg = mem.config().clone();
        let ratio = mode.quant_ratio();
        let elems_per_qcol = self.elems_per_col * ratio;
        for chunk in self.chunks(&cfg) {
            let qcols = (chunk.cols as usize).div_ceil(ratio) as u32;
            for qcol in 0..qcols {
                let start = chunk.elem_start + qcol as usize * elems_per_qcol;
                let end = (start + elems_per_qcol).min(self.n_params);
                let mut lane = data[start..end].to_vec();
                lane.resize(elems_per_qcol, 0.0);
                let bytes = mode.encode_low(&lane);
                debug_assert_eq!(bytes.len(), cfg.burst_bytes);
                mem.poke(self.quant_col_addr(&array, &chunk, qcol, &cfg), &bytes);
            }
        }
    }

    /// Functional helper: reads a quantized array back as (dequantized) f32
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if storage is disabled or the array is not quantized.
    pub fn read_quantized(
        &self,
        mem: &MemorySystem,
        name: ArrayName,
        mode: &ModeRegisters,
    ) -> Vec<f32> {
        let array = *self.array(name);
        assert!(array.quantized, "{name:?} is not quantized");
        let cfg = mem.config().clone();
        let ratio = mode.quant_ratio();
        let elems_per_qcol = self.elems_per_col * ratio;
        let mut out = Vec::with_capacity(self.n_params);
        for chunk in self.chunks(&cfg) {
            let qcols = (chunk.cols as usize).div_ceil(ratio) as u32;
            for qcol in 0..qcols {
                let bytes =
                    mem.peek(self.quant_col_addr(&array, &chunk, qcol, &cfg), cfg.burst_bytes);
                let lane = mode.decode_low(&bytes);
                debug_assert_eq!(lane.len(), elems_per_qcol);
                for v in lane {
                    if out.len() < self.n_params {
                        out.push(v);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    #[test]
    fn momentum_placement_uses_three_banks_plus_quant() {
        let p = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            100_000,
            &cfg(),
        )
        .unwrap();
        assert_eq!(p.array(ArrayName::Theta).bank, 0);
        assert_eq!(p.array(ArrayName::Grad).bank, 1);
        assert_eq!(p.array(ArrayName::State0).bank, 2);
        // Q(g) in bank 2 stacked above v; Q(θ) in bank 3.
        assert_eq!(p.array(ArrayName::QGrad).bank, 2);
        assert!(p.array(ArrayName::QGrad).base_row >= p.rows_span());
        assert_eq!(p.array(ArrayName::QTheta).bank, 3);
        assert_eq!(p.array(ArrayName::QTheta).base_row, 0);
    }

    #[test]
    fn dequant_and_quant_phases_have_no_bank_conflicts() {
        for opt in [OptimizerKind::Sgd, OptimizerKind::MomentumSgd, OptimizerKind::Adam] {
            let p =
                Placement::for_optimizer(opt, PrecisionMix::MIXED_8_32, 10_000, &cfg()).unwrap();
            // Dequant touches Q(g) and g concurrently.
            assert_ne!(p.array(ArrayName::QGrad).bank, p.array(ArrayName::Grad).bank, "{opt}");
            // Quant touches Q(θ) and θ concurrently.
            assert_ne!(p.array(ArrayName::QTheta).bank, p.array(ArrayName::Theta).bank, "{opt}");
        }
    }

    #[test]
    fn update_phase_arrays_in_distinct_banks() {
        let p =
            Placement::for_optimizer(OptimizerKind::Adam, PrecisionMix::MIXED_8_32, 10_000, &cfg())
                .unwrap();
        let banks = [
            p.array(ArrayName::Theta).bank,
            p.array(ArrayName::Grad).bank,
            p.array(ArrayName::State0).bank,
            p.array(ArrayName::State1).bank,
        ];
        let set: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn too_many_arrays_rejected() {
        let mut c = cfg();
        c.banks_per_group = 2;
        let err = Placement::for_optimizer(OptimizerKind::Adam, PrecisionMix::FULL_32, 10, &c)
            .unwrap_err();
        assert!(matches!(err, PlacementError::TooManyArrays { needed: 4, banks: 2 }));
    }

    #[test]
    fn full_precision_has_no_quant_arrays() {
        let p = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::FULL_32,
            1000,
            &cfg(),
        )
        .unwrap();
        assert!(!p.has_array(ArrayName::QTheta));
        assert!(!p.has_array(ArrayName::QGrad));
    }

    #[test]
    fn chunks_walk_bankgroups_first() {
        let c = cfg();
        let p = Placement::for_optimizer(
            OptimizerKind::Sgd,
            PrecisionMix::MIXED_8_32,
            2048 * 6, // six full chunks
            &c,
        )
        .unwrap();
        let chunks = p.chunks(&c);
        assert_eq!(chunks.len(), 6);
        assert_eq!(
            chunks.iter().map(|ch| ch.bankgroup).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1]
        );
        assert_eq!(chunks[4].rank, 1, "fifth chunk spills to the next rank");
        assert!(chunks.iter().all(|ch| ch.row_offset == 0));
        assert!(chunks.iter().all(|ch| ch.cols == c.columns as u32));
    }

    #[test]
    fn partial_last_chunk() {
        let c = cfg();
        let p =
            Placement::for_optimizer(OptimizerKind::Sgd, PrecisionMix::MIXED_8_32, 2048 + 100, &c)
                .unwrap();
        let chunks = p.chunks(&c);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].cols, 128);
        assert_eq!(chunks[1].cols, 100u32.div_ceil(16));
    }

    #[test]
    fn master_array_round_trip_through_memory() {
        let c = cfg();
        let p = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            5000,
            &c,
        )
        .unwrap();
        let mut mem = MemorySystem::with_storage(c, AddressMapping::GradPim);
        let mode = ModeRegisters::default();
        let data: Vec<f32> = (0..5000).map(|i| i as f32 * 0.5 - 100.0).collect();
        p.write_master(&mut mem, ArrayName::Theta, &mode, &data);
        assert_eq!(p.read_master(&mem, ArrayName::Theta, &mode), data);
    }

    #[test]
    fn quantized_array_round_trip() {
        let c = cfg();
        let p = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            3000,
            &c,
        )
        .unwrap();
        let mut mem = MemorySystem::with_storage(c, AddressMapping::GradPim);
        let mode = ModeRegisters { q8_exponent: -6, ..Default::default() };
        let data: Vec<f32> = (0..3000).map(|i| ((i % 127) as f32 - 63.0) / 64.0).collect();
        p.write_quantized(&mut mem, ArrayName::QGrad, &mode, &data);
        let back = p.read_quantized(&mem, ArrayName::QGrad, &mode);
        let step = 2f32.powi(-6);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= step / 2.0 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn theta_and_grad_columns_share_bankgroup_and_row() {
        // The §V-B criterion the kernels rely on, verified end-to-end
        // through address encode/decode.
        let c = cfg();
        let p = Placement::for_optimizer(
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            50_000,
            &c,
        )
        .unwrap();
        let theta = *p.array(ArrayName::Theta);
        let grad = *p.array(ArrayName::Grad);
        for chunk in p.chunks(&c) {
            for col in [0, chunk.cols - 1] {
                let at = AddressMapping::GradPim.decode(p.col_addr(&theta, &chunk, col, &c), &c);
                let ag = AddressMapping::GradPim.decode(p.col_addr(&grad, &chunk, col, &c), &c);
                assert_eq!(at.bankgroup, ag.bankgroup);
                assert_eq!(at.rank, ag.rank);
                assert_eq!(at.row, ag.row);
                assert_eq!(at.column, ag.column);
                assert_ne!(at.bank, ag.bank);
            }
        }
    }
}
