//! The GradPIM architecture: the paper's primary contribution.
//!
//! This crate layers the GradPIM design of *Kim et al., HPCA 2021* on top of
//! the `gradpim-dram` substrate:
//!
//! * [`scaler`] — the `±(2ⁿ ± 2ᵐ)` shifter-adder scaler and its four
//!   MRW-programmable slots (§IV-B);
//! * [`isa`] — the Table I RFU command encoding over the five spare DDR4
//!   command signals (§IV-E);
//! * [`placement`] — the §V-B data-placement discipline: arrays aligned to
//!   bank regions so matching elements share a bank group across different
//!   banks, with quarter-row packing for quantized shadows;
//! * [`kernel`] — the §IV-D procedures (dequantization, parameter update,
//!   quantization) compiled into per-unit command streams;
//! * [`memory`] — [`GradPimMemory`], a host-side facade that runs real
//!   gradient-descent steps *inside* the simulated DRAM.
//!
//! # Example: momentum SGD running inside DRAM
//!
//! ```
//! use gradpim_core::GradPimMemory;
//! use gradpim_dram::DramConfig;
//! use gradpim_optim::{HyperParams, OptimizerKind, PrecisionMix};
//!
//! let hyper = HyperParams { lr: 0.125, momentum: 0.5, weight_decay: 0.0, ..Default::default() };
//! let mut mem = GradPimMemory::new(
//!     DramConfig::ddr4_2133(),
//!     OptimizerKind::MomentumSgd,
//!     PrecisionMix::MIXED_8_32,
//!     hyper,
//!     1024,
//! )?;
//! mem.load_theta(&vec![1.0; 1024]);
//! mem.write_gradients(&vec![0.5; 1024]);
//! let report = mem.step()?;           // timed, in-DRAM update
//! assert_eq!(report.stats.external_bytes(), 0); // nothing crossed the bus
//! # Ok::<(), gradpim_core::GradPimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod group;
pub mod isa;
pub mod kernel;
pub mod memory;
pub mod placement;
pub mod scaler;
pub mod schedule;
pub mod xalu;

pub use group::NetworkPimMemory;
pub use isa::{DecodeError, GradPimFunc, RfuBits};
pub use kernel::{
    compile_step, compile_step_parts, scaler_bank_for, KernelCounts, KernelError, KernelParts,
    StepPlan, UnitStream,
};
pub use memory::{GradPimError, GradPimMemory, StepReport};
pub use placement::{ArrayName, ArraySpec, Chunk, Placement, PlacementError};
pub use scaler::{ScalerBank, ScalerValue};
pub use schedule::LrSchedule;
pub use xalu::{adam_scalers, adam_step_size, compile_adam, AdamConstants, AdamPlan};
