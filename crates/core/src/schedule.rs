//! Learning-rate scheduling on GradPIM hardware (§VIII "Learning Rate
//! Scheduling").
//!
//! The scaler is built from shifters and adders, so two scheduling
//! strategies are natural:
//!
//! * **shift decay** — "scaling the values each time by 2 can be easily
//!   implemented using a shifter": the learning rate halves every `period`
//!   steps without any MRW traffic;
//! * **lattice approximation** — "for more complicated scheduling such as
//!   cosine … we may choose to approximate the decaying function": the host
//!   computes the schedule and reprograms the scaler slot via MRW; every
//!   value lands on the `±(2ⁿ ± 2ᵐ)` lattice, so the *effective* schedule is
//!   a staircase within 9.1 % of the ideal curve.

use crate::scaler::ScalerValue;

/// A learning-rate schedule evaluated host-side and realized with scaler
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate (the paper's default assumption).
    Constant,
    /// Halve the learning rate every `period` steps (pure shifts — no MRW
    /// needed, the §VIII cheap path).
    ShiftDecay {
        /// Steps between halvings.
        period: u64,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` steps
    /// (SGDR-style, the paper's "more complicated" example), realized via
    /// MRW reprogramming onto the scaler lattice.
    Cosine {
        /// Total steps of the annealing window.
        total: u64,
        /// Floor learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The *ideal* learning rate at step `t` (0-based).
    pub fn ideal_lr(&self, base_lr: f32, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::ShiftDecay { period } => {
                let shifts = (t / period.max(1)).min(126);
                base_lr / (1u128 << shifts.min(126)) as f32
            }
            LrSchedule::Cosine { total, min_lr } => {
                let x = (t.min(total) as f32) / (total.max(1) as f32);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * x).cos())
            }
        }
    }

    /// The learning rate the *hardware* realizes at step `t`: the ideal
    /// value snapped to the scaler lattice. For `ShiftDecay` this is exact
    /// whenever the base rate is (the shifter path); for `Cosine` it is the
    /// §VIII approximation.
    pub fn hardware_lr(&self, base_lr: f32, t: u64) -> f32 {
        let ideal = self.ideal_lr(base_lr, t);
        ScalerValue::approximate(ideal as f64).value() as f32
    }

    /// Whether the step `t → t+1` transition needs an MRW reprogramming
    /// (shift decay only reprograms on halving boundaries; cosine whenever
    /// the lattice value changes).
    pub fn needs_mrw(&self, base_lr: f32, t: u64) -> bool {
        match *self {
            LrSchedule::Constant => false,
            LrSchedule::ShiftDecay { period } => t > 0 && t.is_multiple_of(period.max(1)),
            LrSchedule::Cosine { .. } => {
                t == 0 || self.hardware_lr(base_lr, t) != self.hardware_lr(base_lr, t - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_reprograms() {
        let s = LrSchedule::Constant;
        for t in 0..100 {
            assert_eq!(s.ideal_lr(0.01, t), 0.01);
            assert!(!s.needs_mrw(0.01, t));
        }
    }

    #[test]
    fn shift_decay_halves_exactly() {
        let s = LrSchedule::ShiftDecay { period: 10 };
        assert_eq!(s.ideal_lr(0.5, 0), 0.5);
        assert_eq!(s.ideal_lr(0.5, 9), 0.5);
        assert_eq!(s.ideal_lr(0.5, 10), 0.25);
        assert_eq!(s.ideal_lr(0.5, 35), 0.0625);
        // Power-of-two base: the hardware value is exact at every step.
        for t in 0..50 {
            assert_eq!(s.hardware_lr(0.5, t), s.ideal_lr(0.5, t));
        }
        // MRW only on halving boundaries.
        assert!(!s.needs_mrw(0.5, 9));
        assert!(s.needs_mrw(0.5, 10));
        assert!(!s.needs_mrw(0.5, 11));
    }

    #[test]
    fn cosine_staircase_tracks_ideal_within_lattice_bound() {
        let s = LrSchedule::Cosine { total: 1000, min_lr: 1e-4 };
        let base = 0.1f32;
        let mut last = f32::INFINITY;
        for t in (0..=1000).step_by(25) {
            let ideal = s.ideal_lr(base, t);
            let hw = s.hardware_lr(base, t);
            assert!(((hw - ideal) / ideal).abs() < 0.0911, "t={t}: hw {hw} vs ideal {ideal}");
            // The staircase is non-increasing along the anneal.
            assert!(hw <= last + 1e-9, "t={t}");
            last = hw;
        }
        // Ends at the floor.
        assert!((s.ideal_lr(base, 1000) - 1e-4).abs() < 1e-6);
    }

    #[test]
    fn cosine_reprograms_sparsely() {
        // The lattice staircase changes value far less often than every
        // step — MRW overhead is negligible (the §VIII point).
        let s = LrSchedule::Cosine { total: 1000, min_lr: 1e-4 };
        let mrw_count = (1..1000).filter(|&t| s.needs_mrw(0.1, t)).count();
        // The ±(2ⁿ ± 2ᵐ) lattice has ~7 values per octave; a 0.1 → 1e-4
        // anneal (≈10 octaves) crosses ~10² lattice points, so the MRW
        // traffic is ~1 per 9 steps — negligible next to an update kernel.
        assert!(mrw_count < 150, "{mrw_count} reprogrammings for 1000 steps");
        assert!(mrw_count > 5);
    }
}
