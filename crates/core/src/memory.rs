//! `GradPimMemory`: the host-side view of a GradPIM-equipped memory.
//!
//! This facade owns a functional [`MemorySystem`], a [`Placement`] for one
//! parameter group, and the MRW programming state. It exposes the workflow
//! of §IV-D as a library API:
//!
//! 1. the host loads master weights ([`GradPimMemory::load_theta`]);
//! 2. each step, the NPU writes (quantized) gradients
//!    ([`GradPimMemory::write_gradients`]);
//! 3. the host triggers the in-DRAM update ([`GradPimMemory::step`]) —
//!    dequantization, parameter update and re-quantization all execute as
//!    timed GradPIM command streams inside the DRAM simulator;
//! 4. the NPU reads back quantized weights
//!    ([`GradPimMemory::quantized_theta`]) for the next forward pass.

use gradpim_dram::{
    AddressMapping, DramConfig, ElemKind, MemError, MemorySystem, ModeRegisters, Stats,
};
use gradpim_optim::{HyperParams, OptimizerKind, PrecisionMix, Q8Scale};

use crate::kernel::{compile_step_parts, KernelParts};
use crate::placement::{ArrayName, Placement, PlacementError};

/// Errors from the GradPIM memory facade.
#[derive(Debug, Clone, PartialEq)]
pub enum GradPimError {
    /// Placement failed.
    Placement(PlacementError),
    /// Kernel compilation failed.
    Kernel(crate::kernel::KernelError),
    /// The underlying memory simulation failed.
    Memory(MemError),
}

impl std::fmt::Display for GradPimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GradPimError::Placement(e) => write!(f, "placement: {e}"),
            GradPimError::Kernel(e) => write!(f, "kernel: {e}"),
            GradPimError::Memory(e) => write!(f, "memory: {e}"),
        }
    }
}

impl std::error::Error for GradPimError {}

impl From<PlacementError> for GradPimError {
    fn from(e: PlacementError) -> Self {
        GradPimError::Placement(e)
    }
}

impl From<crate::kernel::KernelError> for GradPimError {
    fn from(e: crate::kernel::KernelError) -> Self {
        GradPimError::Kernel(e)
    }
}

impl From<MemError> for GradPimError {
    fn from(e: MemError) -> Self {
        GradPimError::Memory(e)
    }
}

/// Timing/energy results of one in-DRAM update step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Memory-clock cycles spent on the dequantization pass.
    pub dequant_cycles: u64,
    /// Cycles spent on update + quantization.
    pub update_cycles: u64,
    /// Commands issued during this step.
    pub commands: u64,
    /// Stats snapshot after the step (cumulative).
    pub stats: Stats,
}

impl StepReport {
    /// Total cycles of the step.
    pub fn total_cycles(&self) -> u64 {
        self.dequant_cycles + self.update_cycles
    }
}

fn elem_for(p: gradpim_optim::Precision) -> ElemKind {
    match p {
        gradpim_optim::Precision::Fp32 => ElemKind::F32,
        gradpim_optim::Precision::Fp16 => ElemKind::F16,
        gradpim_optim::Precision::Int8 => ElemKind::I8,
    }
}

/// A GradPIM-equipped memory managing one parameter group.
#[derive(Debug)]
pub struct GradPimMemory {
    mem: MemorySystem,
    placement: Placement,
    hyper: HyperParams,
    mode: ModeRegisters,
    grad_exponent: i32,
    theta_exponent: i32,
    /// Update steps applied (drives Adam's bias correction).
    steps: u64,
}

impl GradPimMemory {
    /// Builds the memory, places the arrays, and programs the scaler bank.
    ///
    /// # Errors
    ///
    /// [`GradPimError::Placement`] if the arrays don't fit;
    /// [`GradPimError::Kernel`] if the optimizer is outside the base
    /// primitive set.
    pub fn new(
        cfg: DramConfig,
        optimizer: OptimizerKind,
        mix: PrecisionMix,
        hyper: HyperParams,
        n_params: usize,
    ) -> Result<Self, GradPimError> {
        let placement = Placement::for_optimizer(optimizer, mix, n_params, &cfg)?;
        // The momentum family programs its scaler bank once; Adam (via the
        // §VIII extended ALU) reprograms per pass inside step() and needs
        // `extended_alu` on the device.
        let scalers = if optimizer == OptimizerKind::Adam {
            if !cfg.extended_alu {
                return Err(crate::kernel::KernelError::UnsupportedOptimizer(optimizer).into());
            }
            crate::scaler::ScalerBank::program([0.0, 0.0, 0.0, 1.0])
        } else {
            crate::kernel::scaler_bank_for(optimizer, &hyper)?
        };
        let mut mem = MemorySystem::with_storage(cfg, AddressMapping::GradPim);
        let mode = ModeRegisters {
            scalers: scalers.to_mode_floats(),
            q8_exponent: -7,
            high: elem_for(mix.high),
            low: elem_for(mix.low),
            eps: hyper.eps,
        };
        mem.set_mode_registers(mode);
        Ok(Self { mem, placement, hyper, mode, grad_exponent: -7, theta_exponent: -7, steps: 0 })
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The underlying memory system (stats, config, …).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Current hyper-parameters.
    pub fn hyper(&self) -> &HyperParams {
        &self.hyper
    }

    /// Reprograms the learning rate (MRW reprogramming, §VIII "Learning
    /// Rate Scheduling").
    ///
    /// # Errors
    ///
    /// [`GradPimError::Kernel`] if the optimizer became unsupported (cannot
    /// happen for an already-constructed memory; kept for API symmetry).
    pub fn set_lr(&mut self, lr: f32) -> Result<(), GradPimError> {
        self.hyper.lr = lr;
        let scalers = crate::kernel::scaler_bank_for(self.placement.optimizer(), &self.hyper)?;
        self.mode.scalers = scalers.to_mode_floats();
        self.mem.set_mode_registers(self.mode);
        Ok(())
    }

    fn mode_with_exponent(&self, e: i32) -> ModeRegisters {
        let mut m = self.mode;
        m.q8_exponent = e;
        m
    }

    /// Loads master weights and initializes their quantized shadow and any
    /// optimizer state to zero.
    pub fn load_theta(&mut self, theta: &[f32]) {
        let max = theta.iter().fold(0f32, |m, v| m.max(v.abs()));
        self.theta_exponent = Q8Scale::for_max_abs(max).exponent;
        let mode = self.mode_with_exponent(self.theta_exponent);
        self.placement.write_master(&mut self.mem, ArrayName::Theta, &mode, theta);
        if self.placement.has_array(ArrayName::QTheta) {
            self.placement.write_quantized(&mut self.mem, ArrayName::QTheta, &mode, theta);
        }
        let zeros = vec![0.0; theta.len()];
        if self.placement.has_array(ArrayName::State0) {
            self.placement.write_master(&mut self.mem, ArrayName::State0, &mode, &zeros);
        }
        if self.placement.has_array(ArrayName::State1) {
            self.placement.write_master(&mut self.mem, ArrayName::State1, &mode, &zeros);
        }
    }

    /// Writes one step's gradients, as the NPU would after its backward
    /// pass: quantized into `Q(g)` under a fresh power-of-two scale for
    /// mixed precision, or directly into `g` for full precision.
    ///
    /// (This uses the storage backdoor; the *timed* gradient write-out is
    /// part of the backward phase in `gradpim-sim`, not of the update
    /// kernel.)
    pub fn write_gradients(&mut self, grads: &[f32]) {
        if self.placement.mix().is_mixed() {
            let max = grads.iter().fold(0f32, |m, v| m.max(v.abs()));
            self.grad_exponent = Q8Scale::for_max_abs(max).exponent;
            let mode = self.mode_with_exponent(self.grad_exponent);
            self.placement.write_quantized(&mut self.mem, ArrayName::QGrad, &mode, grads);
        } else {
            self.placement.write_master(&mut self.mem, ArrayName::Grad, &self.mode, grads);
        }
    }

    /// Refreshes the θ quantization exponent from the current master
    /// weights (§VIII: "utilize the mode register and let the NPU provide
    /// the new value").
    fn refresh_theta_exponent(&mut self) {
        let theta = self.placement.read_master(&self.mem, ArrayName::Theta, &self.mode);
        let max = theta.iter().fold(0f32, |m, v| m.max(v.abs()));
        // Headroom: the update may grow |θ| slightly past the stale max.
        self.theta_exponent = Q8Scale::for_max_abs(max * 1.25).exponent;
    }

    /// Executes one in-DRAM update step: dequantization under the gradient
    /// scale, then update + re-quantization under the weight scale (MRW
    /// reprogrammings between phases, cf. §VIII's mode-register
    /// discussion). Adam dispatches to the two-pass extended-ALU schedule
    /// of [`crate::xalu`].
    ///
    /// # Errors
    ///
    /// Propagates kernel-compilation and drain failures.
    pub fn step(&mut self) -> Result<StepReport, GradPimError> {
        if self.placement.optimizer() == OptimizerKind::Adam {
            return self.step_adam();
        }
        let cfg = self.mem.config().clone();
        let mixed = self.placement.mix().is_mixed();
        let mut commands = 0;

        // Phase 1: dequantization with the gradient exponent.
        let c0 = self.mem.cycles();
        if mixed {
            let dq = compile_step_parts(
                &self.placement,
                &self.hyper,
                &cfg,
                KernelParts { dequant: true, update: false, quant: false },
            )?;
            self.mem.set_mode_registers(self.mode_with_exponent(self.grad_exponent));
            commands += dq.counts.total();
            self.run_streams(&dq.streams)?;
        }
        let c1 = self.mem.cycles();

        // Phase 2: update + quantization with the refreshed θ exponent.
        if mixed {
            self.refresh_theta_exponent();
            self.mem.set_mode_registers(self.mode_with_exponent(self.theta_exponent));
        }
        let upq = compile_step_parts(
            &self.placement,
            &self.hyper,
            &cfg,
            KernelParts { dequant: false, update: true, quant: true },
        )?;
        commands += upq.counts.total();
        self.run_streams(&upq.streams)?;
        let c2 = self.mem.cycles();

        self.steps += 1;
        let stats = self.mem.stats();
        Ok(StepReport { dequant_cycles: c1 - c0, update_cycles: c2 - c1, commands, stats })
    }

    /// The §VIII two-pass Adam step on the extended ALU: dequantize, pass 1
    /// (moment updates) under the β scaler bank, pass 2 (bias-corrected
    /// weight update) under the step-size bank, then re-quantize.
    fn step_adam(&mut self) -> Result<StepReport, GradPimError> {
        let cfg = self.mem.config().clone();
        let mixed = self.placement.mix().is_mixed();
        let t = self.steps + 1;
        let plan = crate::xalu::compile_adam(&self.placement, &self.hyper, t, &cfg)?;
        let mut commands = plan.counts.total();

        let c0 = self.mem.cycles();
        if mixed {
            let dq = compile_step_parts(
                &self.placement,
                &self.hyper,
                &cfg,
                KernelParts { dequant: true, update: false, quant: false },
            )?;
            self.mem.set_mode_registers(self.mode_with_exponent(self.grad_exponent));
            commands += dq.counts.total();
            self.run_streams(&dq.streams)?;
        }
        let c1 = self.mem.cycles();

        // Pass 1: moment updates under (β₁, 1−β₁, β₂, √(1−β₂)).
        self.mode.scalers = plan.scalers1.to_mode_floats();
        self.mem.set_mode_registers(self.mode_with_exponent(self.theta_exponent));
        self.run_streams(&plan.pass1)?;

        // Pass 2: bias-corrected weight update under (−a_t, ·, ·, 1).
        self.mode.scalers = plan.scalers2.to_mode_floats();
        self.mem.set_mode_registers(self.mode_with_exponent(self.theta_exponent));
        self.run_streams(&plan.pass2)?;

        // Re-quantize θ under a refreshed exponent (slot 3 is still 1.0).
        if mixed {
            self.refresh_theta_exponent();
            self.mem.set_mode_registers(self.mode_with_exponent(self.theta_exponent));
            let q = compile_step_parts(
                &self.placement,
                &self.hyper,
                &cfg,
                KernelParts { dequant: false, update: false, quant: true },
            )?;
            commands += q.counts.total();
            self.run_streams(&q.streams)?;
        }
        let c2 = self.mem.cycles();

        self.steps += 1;
        let stats = self.mem.stats();
        Ok(StepReport { dequant_cycles: c1 - c0, update_cycles: c2 - c1, commands, stats })
    }

    /// Update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Enqueues per-unit op lists with backpressure and drains.
    fn run_streams(&mut self, streams: &[crate::kernel::UnitStream]) -> Result<(), GradPimError> {
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut all_done = true;
            let mut progress = false;
            for (i, s) in streams.iter().enumerate() {
                while cursors[i] < s.ops.len() {
                    match self.mem.enqueue_pim(s.channel, s.rank, s.bankgroup, s.ops[cursors[i]]) {
                        Ok(_) => {
                            cursors[i] += 1;
                            progress = true;
                        }
                        Err(MemError::QueueFull) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                if cursors[i] < s.ops.len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if !progress {
                // Nothing can retire before the controller's next event;
                // fast-forward instead of spinning one tCK at a time.
                self.mem.tick_until_event();
            }
        }
        // Generous budget: streams of millions of ops still drain well
        // before this.
        let total_ops: usize = streams.iter().map(|s| s.ops.len()).sum();
        self.mem.drain(1_000_000 + total_ops as u64 * 64)?;
        self.mem.take_completions();
        Ok(())
    }

    /// Reads the master weights θ.
    pub fn theta(&self) -> Vec<f32> {
        self.placement.read_master(&self.mem, ArrayName::Theta, &self.mode)
    }

    /// Reads the optimizer's first state array (momentum v / Adam m).
    pub fn state0(&self) -> Vec<f32> {
        self.placement.read_master(&self.mem, ArrayName::State0, &self.mode)
    }

    /// Reads the optimizer's second state array (Adam u).
    ///
    /// # Panics
    ///
    /// Panics if the optimizer keeps fewer than two state arrays.
    pub fn state1(&self) -> Vec<f32> {
        self.placement.read_master(&self.mem, ArrayName::State1, &self.mode)
    }

    /// Reads the dequantized gradient array g (after a step's dequant
    /// phase).
    pub fn grad(&self) -> Vec<f32> {
        self.placement.read_master(&self.mem, ArrayName::Grad, &self.mode)
    }

    /// Reads back what the NPU will see: the quantized weights,
    /// dequantized to f32. Full-precision configurations return θ itself.
    pub fn quantized_theta(&self) -> Vec<f32> {
        if self.placement.mix().is_mixed() {
            let mode = self.mode_with_exponent(self.theta_exponent);
            self.placement.read_quantized(&self.mem, ArrayName::QTheta, &mode)
        } else {
            self.theta()
        }
    }

    /// Cumulative simulation statistics.
    pub fn stats(&self) -> Stats {
        self.mem.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradpim_optim::{MomentumSgd, Optimizer, Sgd};

    fn small_cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    #[test]
    fn full_precision_sgd_matches_reference_exactly_modulo_scaler() {
        let n = 256;
        let hyper = HyperParams { lr: 0.25, weight_decay: 0.0, ..Default::default() };
        let mut gpm =
            GradPimMemory::new(small_cfg(), OptimizerKind::Sgd, PrecisionMix::FULL_32, hyper, n)
                .unwrap();
        let theta0: Vec<f32> = (0..n).map(|i| (i as f32 - 128.0) / 64.0).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) / 8.0).collect();
        gpm.load_theta(&theta0);
        gpm.write_gradients(&grads);
        gpm.step().unwrap();

        // lr = 0.25 is a pure power of two → the scaler is exact and the
        // PIM result must equal the reference bit-for-bit.
        let mut reference = Sgd::new(0.25, 0.0);
        let mut expect = theta0.clone();
        reference.step(&mut expect, &grads);
        assert_eq!(gpm.theta(), expect);
    }

    #[test]
    fn momentum_step_matches_reference_with_exact_scalers() {
        let n = 512;
        // All power-of-two hyper-parameters: exact scalers, exact f32 math.
        let hyper =
            HyperParams { lr: 0.125, momentum: 0.5, weight_decay: 0.0, ..Default::default() };
        let mut gpm = GradPimMemory::new(
            small_cfg(),
            OptimizerKind::MomentumSgd,
            PrecisionMix::FULL_32,
            hyper,
            n,
        )
        .unwrap();
        let theta0: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        gpm.load_theta(&theta0);

        let mut reference = MomentumSgd::new(0.125, 0.5, 0.0, n);
        let mut expect = theta0.clone();
        for step in 0..3 {
            let grads: Vec<f32> = (0..n).map(|i| ((i + step * 31) as f32).cos() * 0.5).collect();
            gpm.write_gradients(&grads);
            gpm.step().unwrap();
            reference.step(&mut expect, &grads);
        }
        let got = gpm.theta();
        for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(a, b, "lane {i}");
        }
        // Velocity array matches too.
        assert_eq!(gpm.state0(), reference.velocity());
    }

    #[test]
    fn mixed_precision_step_tracks_reference_within_quant_error() {
        let n = 2048;
        let hyper =
            HyperParams { lr: 0.125, momentum: 0.5, weight_decay: 0.0, ..Default::default() };
        let mut gpm = GradPimMemory::new(
            small_cfg(),
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            hyper,
            n,
        )
        .unwrap();
        let theta0: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.01).sin()).collect();
        gpm.load_theta(&theta0);
        let grads: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.037).cos()).collect();
        gpm.write_gradients(&grads);
        gpm.step().unwrap();

        let mut reference = MomentumSgd::new(0.125, 0.5, 0.0, n);
        let mut expect = theta0.clone();
        reference.step(&mut expect, &grads);

        // The only error source is the int8 gradient quantization: one
        // gradient quant step × lr bounds the per-weight divergence.
        let gmax = grads.iter().fold(0f32, |m, v| m.max(v.abs()));
        let qstep = Q8Scale::for_max_abs(gmax).factor();
        let tol = 0.125 * qstep / 2.0 + 1e-6;
        for (i, (a, b)) in gpm.theta().iter().zip(&expect).enumerate() {
            assert!((a - b).abs() <= tol, "lane {i}: {a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn dequant_phase_materializes_gradients() {
        let n = 1024;
        let mut gpm = GradPimMemory::new(
            small_cfg(),
            OptimizerKind::Sgd,
            PrecisionMix::MIXED_8_32,
            HyperParams { lr: 0.5, weight_decay: 0.0, ..Default::default() },
            n,
        )
        .unwrap();
        gpm.load_theta(&vec![0.0; n]);
        let grads: Vec<f32> = (0..n).map(|i| (i % 11) as f32 / 11.0 - 0.5).collect();
        gpm.write_gradients(&grads);
        gpm.step().unwrap();
        // g array in DRAM now holds the dequantized gradients.
        let g = gpm.grad();
        let gmax = grads.iter().fold(0f32, |m, v| m.max(v.abs()));
        let qstep = Q8Scale::for_max_abs(gmax).factor();
        for (a, b) in g.iter().zip(&grads) {
            assert!((a - b).abs() <= qstep / 2.0 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn step_report_counts_match_kernel_analytics() {
        let n = 2048;
        let mut gpm = GradPimMemory::new(
            small_cfg(),
            OptimizerKind::MomentumSgd,
            PrecisionMix::MIXED_8_32,
            HyperParams::default(),
            n,
        )
        .unwrap();
        gpm.load_theta(&vec![0.1; n]);
        gpm.write_gradients(&vec![0.01; n]);
        let report = gpm.step().unwrap();
        // 128 columns × 13.5 commands (momentum + wd, ratio 4).
        assert_eq!(report.commands, 128 * 13 + 64);
        assert!(report.dequant_cycles > 0);
        assert!(report.update_cycles > 0);
        // All traffic stayed inside the DRAM: zero external bytes.
        assert_eq!(report.stats.external_bytes(), 0);
    }

    #[test]
    fn lr_schedule_reprograms_scalers() {
        let n = 64;
        let mut gpm = GradPimMemory::new(
            small_cfg(),
            OptimizerKind::Sgd,
            PrecisionMix::FULL_32,
            HyperParams { lr: 0.5, weight_decay: 0.0, ..Default::default() },
            n,
        )
        .unwrap();
        gpm.load_theta(&vec![1.0; n]);
        gpm.write_gradients(&vec![1.0; n]);
        gpm.step().unwrap();
        assert!((gpm.theta()[0] - 0.5).abs() < 1e-6);
        // Halve the learning rate (exact power of two) and step again.
        gpm.set_lr(0.25).unwrap();
        gpm.write_gradients(&vec![1.0; n]);
        gpm.step().unwrap();
        assert!((gpm.theta()[0] - 0.25).abs() < 1e-6);
    }
}
