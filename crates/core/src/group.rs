//! Whole-network GradPIM memory: one parameter group per layer, stacked in
//! the same device.
//!
//! Real deployments hold *every* layer's θ/g/state arrays in the GradPIM
//! memory at once (§V-B's allocator "supporting separation between data
//! structures"). [`NetworkPimMemory`] stacks one [`Placement`] per layer at
//! increasing row bases and runs the whole network's update step with a
//! single call:
//!
//! * the update kernels of **all** groups are concatenated per unit and run
//!   concurrently — layers share the bank-group units, so small layers ride
//!   along with big ones at no extra cost;
//! * the quantization/dequantization kernels run per group (each group's
//!   int8 scale lives in the mode register, so groups are separated by MRW
//!   reprogrammings — the §VIII mode-register mechanism).

use gradpim_dram::{AddressMapping, DramConfig, MemorySystem, ModeRegisters};
use gradpim_optim::{HyperParams, OptimizerKind, PrecisionMix, Q8Scale};

use crate::kernel::{compile_step_parts, scaler_bank_for, KernelParts, UnitStream};
use crate::memory::GradPimError;
use crate::placement::{ArrayName, Placement};

fn elem_for(p: gradpim_optim::Precision) -> gradpim_dram::ElemKind {
    match p {
        gradpim_optim::Precision::Fp32 => gradpim_dram::ElemKind::F32,
        gradpim_optim::Precision::Fp16 => gradpim_dram::ElemKind::F16,
        gradpim_optim::Precision::Int8 => gradpim_dram::ElemKind::I8,
    }
}

/// One stacked parameter group.
#[derive(Debug)]
struct Group {
    name: String,
    placement: Placement,
    grad_exponent: i32,
    theta_exponent: i32,
}

/// A GradPIM memory hosting every layer of a network as a stacked group.
#[derive(Debug)]
pub struct NetworkPimMemory {
    mem: MemorySystem,
    groups: Vec<Group>,
    hyper: HyperParams,
    mode: ModeRegisters,
}

impl NetworkPimMemory {
    /// Builds the memory with one group per `(name, n_params)` layer,
    /// stacked by row base in declaration order.
    ///
    /// # Errors
    ///
    /// [`GradPimError::Placement`] when the stacked groups exceed the
    /// device rows; [`GradPimError::Kernel`] for unsupported optimizers.
    pub fn new(
        cfg: DramConfig,
        optimizer: OptimizerKind,
        mix: PrecisionMix,
        hyper: HyperParams,
        layers: &[(String, usize)],
    ) -> Result<Self, GradPimError> {
        assert!(!layers.is_empty(), "at least one layer group required");
        let scalers = scaler_bank_for(optimizer, &hyper)?;
        let mut groups = Vec::with_capacity(layers.len());
        let mut row_base = 0u32;
        for (name, n) in layers {
            let placement = Placement::for_optimizer_at(optimizer, mix, *n, &cfg, row_base)?;
            row_base += placement.rows_footprint();
            groups.push(Group {
                name: name.clone(),
                placement,
                grad_exponent: -7,
                theta_exponent: -7,
            });
        }
        let mut mem = MemorySystem::with_storage(cfg, AddressMapping::GradPim);
        let mode = ModeRegisters {
            scalers: scalers.to_mode_floats(),
            q8_exponent: -7,
            high: elem_for(mix.high),
            low: elem_for(mix.low),
            eps: hyper.eps,
        };
        mem.set_mode_registers(mode);
        Ok(Self { mem, groups, hyper, mode })
    }

    /// Number of stacked groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The underlying memory system (stats etc.).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    fn group_idx(&self, name: &str) -> usize {
        self.groups
            .iter()
            .position(|g| g.name == name)
            .unwrap_or_else(|| panic!("unknown group '{name}'"))
    }

    fn mode_with_exponent(&self, e: i32) -> ModeRegisters {
        let mut m = self.mode;
        m.q8_exponent = e;
        m
    }

    /// Loads master weights for group `name` (state arrays zeroed, Q(θ)
    /// initialized for mixed precision).
    ///
    /// # Panics
    ///
    /// Panics on an unknown group or length mismatch.
    pub fn load_theta(&mut self, name: &str, theta: &[f32]) {
        let gi = self.group_idx(name);
        let max = theta.iter().fold(0f32, |m, v| m.max(v.abs()));
        self.groups[gi].theta_exponent = Q8Scale::for_max_abs(max).exponent;
        let mode = self.mode_with_exponent(self.groups[gi].theta_exponent);
        let p = &self.groups[gi].placement;
        p.write_master(&mut self.mem, ArrayName::Theta, &mode, theta);
        if p.has_array(ArrayName::QTheta) {
            p.write_quantized(&mut self.mem, ArrayName::QTheta, &mode, theta);
        }
        let zeros = vec![0.0; theta.len()];
        if p.has_array(ArrayName::State0) {
            p.write_master(&mut self.mem, ArrayName::State0, &mode, &zeros);
        }
        if p.has_array(ArrayName::State1) {
            p.write_master(&mut self.mem, ArrayName::State1, &mode, &zeros);
        }
    }

    /// Writes one step's gradients for group `name` (quantized under a
    /// fresh per-group scale for mixed precision).
    ///
    /// # Panics
    ///
    /// Panics on an unknown group or length mismatch.
    pub fn write_gradients(&mut self, name: &str, grads: &[f32]) {
        let gi = self.group_idx(name);
        if self.groups[gi].placement.mix().is_mixed() {
            let max = grads.iter().fold(0f32, |m, v| m.max(v.abs()));
            self.groups[gi].grad_exponent = Q8Scale::for_max_abs(max).exponent;
            let mode = self.mode_with_exponent(self.groups[gi].grad_exponent);
            let p = &self.groups[gi].placement;
            p.write_quantized(&mut self.mem, ArrayName::QGrad, &mode, grads);
        } else {
            let p = &self.groups[gi].placement;
            p.write_master(&mut self.mem, ArrayName::Grad, &self.mode, grads);
        }
    }

    /// Runs one update step over **all** groups: per-group dequantization
    /// (sequential, own gradient scale), all update kernels concurrently,
    /// per-group re-quantization.
    ///
    /// # Errors
    ///
    /// Propagates kernel-compilation and simulation failures.
    pub fn step_all(&mut self) -> Result<(), GradPimError> {
        let cfg = self.mem.config().clone();
        let mixed = self.groups[0].placement.mix().is_mixed();

        // Per-group dequantization with its own exponent.
        if mixed {
            for gi in 0..self.groups.len() {
                let plan = compile_step_parts(
                    &self.groups[gi].placement,
                    &self.hyper,
                    &cfg,
                    KernelParts { dequant: true, update: false, quant: false },
                )?;
                let exp = self.groups[gi].grad_exponent;
                self.mem.set_mode_registers(self.mode_with_exponent(exp));
                self.run_streams(&plan.streams)?;
            }
        }

        // Concatenate all groups' update kernels per unit and run them in
        // one wave — the big cross-layer parallelism win.
        let mut merged: Vec<UnitStream> = Vec::new();
        for g in &self.groups {
            let plan = compile_step_parts(
                &g.placement,
                &self.hyper,
                &cfg,
                KernelParts { dequant: false, update: true, quant: false },
            )?;
            for s in plan.streams {
                match merged.iter_mut().find(|m| {
                    m.channel == s.channel && m.rank == s.rank && m.bankgroup == s.bankgroup
                }) {
                    Some(m) => m.ops.extend(s.ops),
                    None => merged.push(s),
                }
            }
        }
        self.mem.set_mode_registers(self.mode);
        self.run_streams(&merged)?;

        // Per-group re-quantization with refreshed θ scales.
        if mixed {
            for gi in 0..self.groups.len() {
                let theta =
                    self.groups[gi].placement.read_master(&self.mem, ArrayName::Theta, &self.mode);
                let max = theta.iter().fold(0f32, |m, v| m.max(v.abs()));
                self.groups[gi].theta_exponent = Q8Scale::for_max_abs(max * 1.25).exponent;
                let plan = compile_step_parts(
                    &self.groups[gi].placement,
                    &self.hyper,
                    &cfg,
                    KernelParts { dequant: false, update: false, quant: true },
                )?;
                let exp = self.groups[gi].theta_exponent;
                self.mem.set_mode_registers(self.mode_with_exponent(exp));
                self.run_streams(&plan.streams)?;
            }
        }
        Ok(())
    }

    /// Reads group `name`'s master weights.
    ///
    /// # Panics
    ///
    /// Panics on an unknown group.
    pub fn theta(&self, name: &str) -> Vec<f32> {
        let gi = self.group_idx(name);
        self.groups[gi].placement.read_master(&self.mem, ArrayName::Theta, &self.mode)
    }

    /// Reads group `name`'s quantized weights (what the NPU sees),
    /// dequantized to f32.
    ///
    /// # Panics
    ///
    /// Panics on an unknown group.
    pub fn quantized_theta(&self, name: &str) -> Vec<f32> {
        let gi = self.group_idx(name);
        let g = &self.groups[gi];
        if g.placement.mix().is_mixed() {
            let mode = self.mode_with_exponent(g.theta_exponent);
            g.placement.read_quantized(&self.mem, ArrayName::QTheta, &mode)
        } else {
            self.theta(name)
        }
    }

    fn run_streams(&mut self, streams: &[UnitStream]) -> Result<(), GradPimError> {
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut all_done = true;
            let mut progress = false;
            for (i, s) in streams.iter().enumerate() {
                while cursors[i] < s.ops.len() {
                    match self.mem.enqueue_pim(s.channel, s.rank, s.bankgroup, s.ops[cursors[i]]) {
                        Ok(_) => {
                            cursors[i] += 1;
                            progress = true;
                        }
                        Err(gradpim_dram::MemError::QueueFull) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                if cursors[i] < s.ops.len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if !progress {
                // Nothing can retire before the controller's next event;
                // fast-forward instead of spinning one tCK at a time.
                self.mem.tick_until_event();
            }
        }
        let total_ops: usize = streams.iter().map(|s| s.ops.len()).sum();
        self.mem.drain(1_000_000 + total_ops as u64 * 64)?;
        self.mem.take_completions();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradpim_optim::{MomentumSgd, Optimizer};

    fn hyper() -> HyperParams {
        HyperParams { lr: 0.125, momentum: 0.5, weight_decay: 0.0, ..Default::default() }
    }

    #[test]
    fn two_groups_update_independently_and_match_references() {
        let layers = vec![("fc1".to_string(), 2048usize), ("fc2".to_string(), 512)];
        let mut net = NetworkPimMemory::new(
            DramConfig::ddr4_2133(),
            OptimizerKind::MomentumSgd,
            PrecisionMix::FULL_32,
            hyper(),
            &layers,
        )
        .unwrap();
        let t1: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin()).collect();
        let t2: Vec<f32> = (0..512).map(|i| (i as f32 * 0.02).cos()).collect();
        net.load_theta("fc1", &t1);
        net.load_theta("fc2", &t2);

        let mut r1 = MomentumSgd::new(0.125, 0.5, 0.0, 2048);
        let mut r2 = MomentumSgd::new(0.125, 0.5, 0.0, 512);
        let mut e1 = t1.clone();
        let mut e2 = t2.clone();
        for step in 0..3 {
            let g1: Vec<f32> = (0..2048).map(|i| ((i + step * 7) as f32 * 0.03).cos()).collect();
            let g2: Vec<f32> = (0..512).map(|i| ((i + step * 3) as f32 * 0.05).sin()).collect();
            net.write_gradients("fc1", &g1);
            net.write_gradients("fc2", &g2);
            net.step_all().unwrap();
            r1.step(&mut e1, &g1);
            r2.step(&mut e2, &g2);
        }
        assert_eq!(net.theta("fc1"), e1, "group fc1");
        assert_eq!(net.theta("fc2"), e2, "group fc2");
    }

    #[test]
    fn mixed_precision_groups_keep_separate_scales() {
        // Two groups with wildly different gradient magnitudes: per-group
        // exponents keep both accurate.
        let layers = vec![("big".to_string(), 2048usize), ("small".to_string(), 2048)];
        let mut net = NetworkPimMemory::new(
            DramConfig::ddr4_2133(),
            OptimizerKind::Sgd,
            PrecisionMix::MIXED_8_32,
            HyperParams { lr: 0.5, weight_decay: 0.0, ..Default::default() },
            &layers,
        )
        .unwrap();
        net.load_theta("big", &vec![0.0; 2048]);
        net.load_theta("small", &vec![0.0; 2048]);
        let g_big: Vec<f32> = (0..2048).map(|i| 100.0 + (i % 10) as f32).collect();
        let g_small: Vec<f32> = (0..2048).map(|i| 0.001 * (1.0 + (i % 10) as f32 / 10.0)).collect();
        net.write_gradients("big", &g_big);
        net.write_gradients("small", &g_small);
        net.step_all().unwrap();
        // θ = −lr·g within each group's own quantization step.
        let th_big = net.theta("big");
        let th_small = net.theta("small");
        let step_big = Q8Scale::for_max_abs(109.0).factor();
        let step_small = Q8Scale::for_max_abs(0.002).factor();
        for (t, g) in th_big.iter().zip(&g_big) {
            assert!((t + 0.5 * g).abs() <= 0.5 * step_big / 2.0 + 1e-4, "{t} vs {g}");
        }
        for (t, g) in th_small.iter().zip(&g_small) {
            assert!((t + 0.5 * g).abs() <= 0.5 * step_small / 2.0 + 1e-6, "{t} vs {g}");
        }
    }

    #[test]
    fn groups_are_isolated() {
        // Stepping with zero gradients in one group must leave the other
        // group's weights untouched (row stacking does not alias).
        let layers = vec![("a".to_string(), 4096usize), ("b".to_string(), 4096)];
        let mut net = NetworkPimMemory::new(
            DramConfig::ddr4_2133(),
            OptimizerKind::Sgd,
            PrecisionMix::FULL_32,
            HyperParams { lr: 0.25, weight_decay: 0.0, ..Default::default() },
            &layers,
        )
        .unwrap();
        let ta: Vec<f32> = (0..4096).map(|i| i as f32 * 0.001).collect();
        let tb: Vec<f32> = (0..4096).map(|i| -(i as f32) * 0.002).collect();
        net.load_theta("a", &ta);
        net.load_theta("b", &tb);
        net.write_gradients("a", &vec![1.0; 4096]);
        net.write_gradients("b", &vec![0.0; 4096]);
        net.step_all().unwrap();
        assert_eq!(net.theta("b"), tb, "group b must be unchanged");
        let a = net.theta("a");
        for (x, x0) in a.iter().zip(&ta) {
            assert!((x - (x0 - 0.25)).abs() < 1e-6);
        }
    }

    #[test]
    fn stacking_overflows_are_reported() {
        let mut cfg = DramConfig::ddr4_2133();
        cfg.rows = 8; // tiny device
        let layers = vec![
            ("l0".to_string(), 2048 * 16 * 4usize), // 4 rows of chunks
            ("l1".to_string(), 2048 * 16 * 8),
        ];
        let err = NetworkPimMemory::new(
            cfg,
            OptimizerKind::Sgd,
            PrecisionMix::MIXED_8_32,
            HyperParams::default(),
            &layers,
        )
        .unwrap_err();
        assert!(matches!(err, GradPimError::Placement(_)), "{err}");
    }
}
