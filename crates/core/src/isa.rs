//! The GradPIM command encoding: Table I over the five RFU signals (§IV-E).
//!
//! GradPIM commands ride on DDR4 RFU (reserved-for-future-use) command
//! encodings; besides the usual bank-group/bank/row/column address pins,
//! five signals remain free — the paper uses A12/BC_n, A17, A13, A11 and
//! A10/AP — and Table I assigns them as `Op0, Op1, Param0, Param1, Src/Dst`:
//!
//! | Func        | Op0 | Op1 | Param0    | Param1 | Src/Dst |
//! |-------------|-----|-----|-----------|--------|---------|
//! | Scaled Read | L   | L   | Scale id  | (2 b)  | Dst     |
//! | DeQuant     | H   | L   | Src pos   | (2 b)  | Dst     |
//! | Quant       | H   | H   | Dst pos   | (2 b)  | Src     |
//! | Writeback   | L   | H   | L         | L      | Src     |
//! | Q. Reg      | L   | H   | H         | L      | RD/WR   |
//! | Add         | L   | H   | H         | H      | Dst     |
//! | Sub         | L   | H   | L         | H      | Dst     |

use gradpim_dram::PimOp;

/// The raw five-signal field of a GradPIM RFU command. Bit order (MSB→LSB):
/// `Op0, Op1, Param0, Param1, SrcDst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RfuBits {
    /// Function-select bit 0 (A12/BC_n in the paper's pin assignment).
    pub op0: bool,
    /// Function-select bit 1 (A17).
    pub op1: bool,
    /// Parameter bit 0 (A13).
    pub param0: bool,
    /// Parameter bit 1 (A11).
    pub param1: bool,
    /// Source/destination register select (A10/AP).
    pub srcdst: bool,
}

impl RfuBits {
    /// Packs into a 5-bit integer `Op0 Op1 P0 P1 SD`.
    pub fn pack(self) -> u8 {
        (self.op0 as u8) << 4
            | (self.op1 as u8) << 3
            | (self.param0 as u8) << 2
            | (self.param1 as u8) << 1
            | self.srcdst as u8
    }

    /// Unpacks from a 5-bit integer.
    ///
    /// # Panics
    ///
    /// Panics if bits above bit 4 are set.
    pub fn unpack(v: u8) -> Self {
        assert!(v < 32, "RFU field is 5 bits, got {v:#x}");
        Self {
            op0: v & 0b10000 != 0,
            op1: v & 0b01000 != 0,
            param0: v & 0b00100 != 0,
            param1: v & 0b00010 != 0,
            srcdst: v & 0b00001 != 0,
        }
    }
}

/// A decoded GradPIM function with its register-level operands (no
/// addresses; those travel on the ordinary address pins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GradPimFunc {
    /// Scaled read with scaler slot `scale` into temp register `dst`.
    ScaledRead {
        /// Scaler slot (0–3).
        scale: u8,
        /// Destination temp register.
        dst: u8,
    },
    /// Dequantize quant-register slice `pos` into temp register `dst`.
    Dequant {
        /// Source slice within the quantization register.
        pos: u8,
        /// Destination temp register.
        dst: u8,
    },
    /// Quantize temp register `src` into quant-register slice `pos`.
    Quant {
        /// Destination slice within the quantization register.
        pos: u8,
        /// Source temp register.
        src: u8,
    },
    /// Write temp register `src` back to the addressed column.
    Writeback {
        /// Source temp register.
        src: u8,
    },
    /// Move the quantization register from (`write = false`) or to
    /// (`write = true`) the addressed column.
    QReg {
        /// Direction: `false` = RD (column → register), `true` = WR.
        write: bool,
    },
    /// Parallel add into temp register `dst`.
    Add {
        /// Destination temp register.
        dst: u8,
    },
    /// Parallel subtract into temp register `dst`.
    Sub {
        /// Destination temp register.
        dst: u8,
    },
}

/// Raised when a 5-bit pattern does not decode to a GradPIM function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(
    /// The offending packed bits.
    pub u8,
);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid GradPIM RFU encoding {:#07b}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl GradPimFunc {
    /// Encodes per Table I.
    pub fn encode(self) -> RfuBits {
        let b = |v: u8, bit: u8| v >> bit & 1 != 0;
        match self {
            GradPimFunc::ScaledRead { scale, dst } => RfuBits {
                op0: false,
                op1: false,
                param0: b(scale, 1),
                param1: b(scale, 0),
                srcdst: dst & 1 != 0,
            },
            GradPimFunc::Dequant { pos, dst } => RfuBits {
                op0: true,
                op1: false,
                param0: b(pos, 1),
                param1: b(pos, 0),
                srcdst: dst & 1 != 0,
            },
            GradPimFunc::Quant { pos, src } => RfuBits {
                op0: true,
                op1: true,
                param0: b(pos, 1),
                param1: b(pos, 0),
                srcdst: src & 1 != 0,
            },
            GradPimFunc::Writeback { src } => RfuBits {
                op0: false,
                op1: true,
                param0: false,
                param1: false,
                srcdst: src & 1 != 0,
            },
            GradPimFunc::QReg { write } => {
                RfuBits { op0: false, op1: true, param0: true, param1: false, srcdst: write }
            }
            GradPimFunc::Add { dst } => {
                RfuBits { op0: false, op1: true, param0: true, param1: true, srcdst: dst & 1 != 0 }
            }
            GradPimFunc::Sub { dst } => {
                RfuBits { op0: false, op1: true, param0: false, param1: true, srcdst: dst & 1 != 0 }
            }
        }
    }

    /// Decodes per Table I.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for RFU patterns Table I leaves unassigned (there are
    /// none in the 5-bit space — every pattern is claimed — so this is
    /// currently infallible but kept fallible for the §IV-E extension space).
    pub fn decode(bits: RfuBits) -> Result<Self, DecodeError> {
        let two = |a: bool, b: bool| (a as u8) << 1 | b as u8;
        Ok(match (bits.op0, bits.op1) {
            (false, false) => GradPimFunc::ScaledRead {
                scale: two(bits.param0, bits.param1),
                dst: bits.srcdst as u8,
            },
            (true, false) => {
                GradPimFunc::Dequant { pos: two(bits.param0, bits.param1), dst: bits.srcdst as u8 }
            }
            (true, true) => {
                GradPimFunc::Quant { pos: two(bits.param0, bits.param1), src: bits.srcdst as u8 }
            }
            (false, true) => match (bits.param0, bits.param1) {
                (false, false) => GradPimFunc::Writeback { src: bits.srcdst as u8 },
                (true, false) => GradPimFunc::QReg { write: bits.srcdst },
                (true, true) => GradPimFunc::Add { dst: bits.srcdst as u8 },
                (false, true) => GradPimFunc::Sub { dst: bits.srcdst as u8 },
            },
        })
    }

    /// The function encoded in a [`PimOp`] (addresses dropped).
    ///
    /// Returns `None` for the §VIII extended-ALU ops (multiply, rsqrt):
    /// Table I claims the whole 5-signal space, so those ride on the §IV-E
    /// expansion mechanism ("add an extra command signal or occupy unused
    /// command combinations") and have no encoding in the base table.
    pub fn from_pim_op(op: PimOp) -> Option<Self> {
        Some(match op {
            PimOp::ScaledRead { scaler, dst, .. } => GradPimFunc::ScaledRead { scale: scaler, dst },
            PimOp::Writeback { src, .. } => GradPimFunc::Writeback { src },
            PimOp::QRegLoad { .. } => GradPimFunc::QReg { write: false },
            PimOp::QRegStore { .. } => GradPimFunc::QReg { write: true },
            PimOp::Add { dst, .. } => GradPimFunc::Add { dst },
            PimOp::Sub { dst, .. } => GradPimFunc::Sub { dst },
            PimOp::Quant { pos, src, .. } => GradPimFunc::Quant { pos, src },
            PimOp::Dequant { pos, dst, .. } => GradPimFunc::Dequant { pos, dst },
            PimOp::Mul { .. } | PimOp::Rsqrt { .. } => return None,
        })
    }

    /// Renders the Table I row for this function (`L`/`H` per signal), used
    /// by the `table1_commands` bench to print the paper's table.
    pub fn truth_table_row(self) -> String {
        let bits = self.encode();
        let lh = |b: bool| if b { "H" } else { "L" };
        format!(
            "{} {} {} {} {}",
            lh(bits.op0),
            lh(bits.op1),
            lh(bits.param0),
            lh(bits.param1),
            lh(bits.srcdst)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_fixed_rows() {
        // Writeback: L H L L; Q.Reg: L H H L; Add: L H H H; Sub: L H L H.
        assert_eq!(GradPimFunc::Writeback { src: 0 }.truth_table_row(), "L H L L L");
        assert_eq!(GradPimFunc::QReg { write: false }.truth_table_row(), "L H H L L");
        assert_eq!(GradPimFunc::Add { dst: 0 }.truth_table_row(), "L H H H L");
        assert_eq!(GradPimFunc::Sub { dst: 0 }.truth_table_row(), "L H L H L");
        // Scaled read: L L + 2-bit scale id.
        assert_eq!(GradPimFunc::ScaledRead { scale: 0, dst: 0 }.truth_table_row(), "L L L L L");
        assert_eq!(GradPimFunc::ScaledRead { scale: 3, dst: 1 }.truth_table_row(), "L L H H H");
        // DeQuant: H L; Quant: H H.
        assert_eq!(GradPimFunc::Dequant { pos: 2, dst: 1 }.truth_table_row(), "H L H L H");
        assert_eq!(GradPimFunc::Quant { pos: 1, src: 0 }.truth_table_row(), "H H L H L");
    }

    #[test]
    fn encode_decode_round_trip_all_functions() {
        let mut all = Vec::new();
        for scale in 0..4 {
            for dst in 0..2 {
                all.push(GradPimFunc::ScaledRead { scale, dst });
            }
        }
        for pos in 0..4 {
            for r in 0..2 {
                all.push(GradPimFunc::Dequant { pos, dst: r });
                all.push(GradPimFunc::Quant { pos, src: r });
            }
        }
        for r in 0..2u8 {
            all.push(GradPimFunc::Writeback { src: r });
            all.push(GradPimFunc::Add { dst: r });
            all.push(GradPimFunc::Sub { dst: r });
        }
        all.push(GradPimFunc::QReg { write: false });
        all.push(GradPimFunc::QReg { write: true });

        for f in all {
            let bits = f.encode();
            assert_eq!(GradPimFunc::decode(bits).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn every_5bit_pattern_decodes_uniquely() {
        // The 5-bit space is fully and unambiguously assigned: decoding all
        // 32 patterns yields 32 distinct functions that re-encode to the
        // same bits.
        let mut seen = std::collections::HashSet::new();
        for v in 0..32u8 {
            let bits = RfuBits::unpack(v);
            let f = GradPimFunc::decode(bits).expect("all patterns assigned");
            assert_eq!(f.encode().pack(), v, "{f:?}");
            assert!(seen.insert(f), "pattern {v:#07b} duplicates {f:?}");
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for v in 0..32u8 {
            assert_eq!(RfuBits::unpack(v).pack(), v);
        }
    }

    #[test]
    fn pim_op_to_func() {
        let op = PimOp::ScaledRead { bank: 0, row: 1, col: 2, scaler: 2, dst: 1 };
        assert_eq!(
            GradPimFunc::from_pim_op(op),
            Some(GradPimFunc::ScaledRead { scale: 2, dst: 1 })
        );
        assert_eq!(
            GradPimFunc::from_pim_op(PimOp::QRegStore { bank: 0, row: 0, col: 0 }),
            Some(GradPimFunc::QReg { write: true })
        );
        // §VIII extended ops have no Table I encoding.
        assert_eq!(GradPimFunc::from_pim_op(PimOp::Mul { bank: 0, dst: 0 }), None);
        assert_eq!(GradPimFunc::from_pim_op(PimOp::Rsqrt { bank: 0, dst: 1 }), None);
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn unpack_rejects_wide_values() {
        RfuBits::unpack(32);
    }
}
