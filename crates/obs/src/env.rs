//! The observability crate's designated environment-variable module.
//!
//! Every `std::env::var` read in this crate lives here — enforced by
//! `gradpim-lint`'s `env-discipline` rule (see `gradpim_engine::env` for
//! the rationale). Knobs owned by this crate:
//!
//! | variable | effect |
//! |---|---|
//! | `GRADPIM_COST` | `=measured` enables measured-cost feedback for scheduler dispatch order |

/// True when `GRADPIM_COST=measured` requests measured-cost feedback.
/// Dispatch *order* is the only thing this can change — results are
/// order-independent by the scheduler's contract.
pub fn cost_measured() -> bool {
    std::env::var("GRADPIM_COST").as_deref() == Ok("measured")
}
