//! Observability primitives for the GradPIM workspace: tracing spans,
//! a unified metrics registry, and the measured-cost feedback store.
//!
//! This crate is a **leaf**: std-only, zero dependencies, depended on by
//! `gradpim-sim` (phase executors), `gradpim-engine` (scheduler, shard
//! coordinator, sweeps), and `gradpim-cli` (experiment stages) — it never
//! sees their types, it only records what they tell it. Three subsystems
//! share the crate because they share one invariant, *non-perturbation*:
//!
//! * **Spans** ([`span`], [`instant`], [`SpanRec`]) — wall-clock intervals
//!   recorded into per-thread buffers behind a single relaxed atomic load
//!   when tracing is off. A span is opened by a guard and recorded on
//!   drop; [`drain_spans`] collects every buffer (plus spans [`inject`]ed
//!   from shard-worker sidecars) for export as a Chrome-trace timeline
//!   (the exporter lives in `gradpim_engine::trace`, which owns the
//!   workspace's JSON conventions).
//! * **Metrics** ([`counter_add`], [`counter_set`], [`observe`],
//!   [`Registry`]) — named counters and min/max/sum/count histograms with
//!   a deterministic (BTreeMap-ordered) JSON rendering, replacing ad-hoc
//!   env-var stderr dumps.
//! * **Measured cost** ([`record_measured_cost`], [`measured_cost`],
//!   [`cost_feedback`]) — observed per-sweep-point durations keyed by
//!   workload shape, so `gradpim_engine::sched::cost` can prefer observed
//!   cost over its static model under `GRADPIM_COST=measured`.
//!
//! Everything is **off by default** and never touches stdout: simulated
//! results must stay byte-identical with tracing on or off, and emission
//! is the CLI's job. All global state is process-wide; [`reset`] exists
//! for tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// The `pid` recorded on locally-captured spans. Shard-worker spans are
/// re-based by the coordinator onto `shard_index + 2` before [`inject`],
/// so every process lane in a merged timeline is distinct.
pub const COORDINATOR_PID: u32 = 1;

/// Chrome-trace event phase: a complete interval or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ph {
    /// A `ph: "X"` complete event with a duration.
    Complete,
    /// A `ph: "i"` thread-scoped instant event.
    Instant,
}

/// One recorded span or instant, in the units Chrome-trace wants:
/// microseconds since the process [`epoch`](now_us), integer truncated
/// (so a child interval is always contained in its parent's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Event name, e.g. `phase.stream` or `sched.drain_chunk`.
    pub name: Cow<'static, str>,
    /// Layer category: `phase`, `sched`, `dist`, or `cli`.
    pub cat: Cow<'static, str>,
    /// Complete interval or instant.
    pub ph: Ph,
    /// Start, µs since the process epoch (re-based for injected spans).
    pub ts_us: u64,
    /// Duration in µs; 0 for instants.
    pub dur_us: u64,
    /// Process lane: [`COORDINATOR_PID`] locally, `shard + 2` re-based.
    pub pid: u32,
    /// Thread lane: per-thread registration order, starting at 1.
    pub tid: u32,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS: AtomicBool = AtomicBool::new(false);

/// Locks a mutex, ignoring poisoning: every guarded structure here is a
/// plain append/read buffer that stays valid if a panic interrupted a
/// previous holder.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch (the first call wins the zero
/// point). Monotone and integer-truncated, so `now_us` differences taken
/// around nested calls can never invert containment.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Turns span recording on or off, process-wide. Off (the default) costs
/// one relaxed atomic load per [`span`]/[`instant`] call site.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// True when span recording is enabled.
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns metrics recording on or off, process-wide (same cost model as
/// [`set_tracing`]).
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// True when metrics recording is enabled.
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

type Buffer = Arc<Mutex<Vec<SpanRec>>>;

/// Every thread's span buffer, registered on the thread's first record.
/// Buffers are never unregistered: scheduler workers persist for the
/// process lifetime, and a dead thread's buffer is just drained empty.
static BUFFERS: Mutex<Vec<Buffer>> = Mutex::new(Vec::new());
/// Spans handed over from other processes (shard-worker sidecars).
static INJECTED: Mutex<Vec<SpanRec>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: RefCell<Option<(u32, Buffer)>> = const { RefCell::new(None) };
}

/// Appends to this thread's buffer — uncontended except against a
/// concurrent [`drain_spans`], so recording is lock-cheap.
fn record(mut rec: SpanRec, tid_hint: Option<u32>) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let (tid, buf) = local.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
            lock_unpoisoned(&BUFFERS).push(Arc::clone(&buf));
            (tid, buf)
        });
        rec.tid = tid_hint.unwrap_or(*tid);
        lock_unpoisoned(buf).push(rec);
    });
}

/// An open span: records a [`Ph::Complete`] event over its lifetime when
/// tracing was enabled at creation, and is a no-op otherwise.
#[must_use = "a span measures its guard's lifetime — bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard(Option<OpenSpan>);

#[derive(Debug)]
struct OpenSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end_us = now_us();
            record(
                SpanRec {
                    name: open.name,
                    cat: Cow::Borrowed(open.cat),
                    ph: Ph::Complete,
                    ts_us: open.start_us,
                    dur_us: end_us.saturating_sub(open.start_us),
                    pid: COORDINATOR_PID,
                    tid: 0,
                },
                None,
            );
        }
    }
}

/// Opens a span named `name` in layer category `cat`; the returned guard
/// records the interval on drop. When tracing is off this is one relaxed
/// load and no allocation (pass a `&'static str` on hot paths).
pub fn span(name: impl Into<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
    if !tracing() {
        return SpanGuard(None);
    }
    SpanGuard(Some(OpenSpan { name: name.into(), cat, start_us: now_us() }))
}

/// [`span`] with a lazily-built name: `name()` runs only when tracing is
/// enabled, so `format!`-built names cost nothing on the off path.
pub fn span_lazy(name: impl FnOnce() -> String, cat: &'static str) -> SpanGuard {
    if !tracing() {
        return SpanGuard(None);
    }
    SpanGuard(Some(OpenSpan { name: Cow::Owned(name()), cat, start_us: now_us() }))
}

/// Records a point event (steals, retries) when tracing is enabled.
pub fn instant(name: impl Into<Cow<'static, str>>, cat: &'static str) {
    if !tracing() {
        return;
    }
    record(
        SpanRec {
            name: name.into(),
            cat: Cow::Borrowed(cat),
            ph: Ph::Instant,
            ts_us: now_us(),
            dur_us: 0,
            pid: COORDINATOR_PID,
            tid: 0,
        },
        None,
    );
}

/// Takes every recorded span out of every thread's buffer (registrations
/// and thread ids survive) plus everything [`inject`]ed, in an
/// unspecified order — exporters sort.
pub fn drain_spans() -> Vec<SpanRec> {
    let mut out: Vec<SpanRec> = std::mem::take(&mut *lock_unpoisoned(&INJECTED));
    for buf in lock_unpoisoned(&BUFFERS).iter() {
        out.append(&mut lock_unpoisoned(buf));
    }
    out
}

/// Adds externally-captured spans (a shard worker's re-based sidecar) to
/// the next [`drain_spans`] result.
pub fn inject(spans: Vec<SpanRec>) {
    lock_unpoisoned(&INJECTED).extend(spans);
}

/// Clears all recorded spans, injected spans, metrics, and measured
/// costs — for tests that assert on global state. Enable flags and
/// thread-id assignments are left alone.
pub fn reset() {
    drop(drain_spans());
    *lock_unpoisoned(&REGISTRY) = Registry::default();
    lock_unpoisoned(&MEASURED).clear();
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// One histogram: count / min / max / sum of observed values. Means and
/// rates are derived by readers, not stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Sum of observed values, in observation order.
    pub sum: f64,
}

impl Hist {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
    }
}

/// The unified metrics registry: named counters and histograms with a
/// deterministic JSON rendering. One global instance is written through
/// [`counter_add`]/[`counter_set`]/[`observe`] and snapshotted with
/// [`registry`]; the type is public so coordinators can merge or render
/// snapshots themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotone named counters (e.g. the scheduler's `SchedStats`).
    pub counters: BTreeMap<String, u64>,
    /// Named histograms (e.g. per-phase wall-clock and cycle counts).
    pub hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Renders the registry as a small JSON document. Deterministic:
    /// `BTreeMap` order, shortest-round-trip floats. The document shape
    /// is `{"counters": {...}, "histograms": {name: {count, min, max,
    /// sum}}}` and parses with `gradpim_engine`'s JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_into(&mut out, name);
            out.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_into(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}}}",
                h.count,
                float_text(h.min),
                float_text(h.max),
                float_text(h.sum)
            ));
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Shortest-round-trip float text, finite values only (metrics are
/// counts and durations); non-finite values render as 0 defensively.
fn float_text(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Minimal JSON string escaping for metric names (matching the
/// conventions of `gradpim_engine`'s emitter, which this crate cannot
/// depend on — it sits below the engine).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

static REGISTRY: Mutex<Registry> =
    Mutex::new(Registry { counters: BTreeMap::new(), hists: BTreeMap::new() });

/// Adds `v` to the named counter (created at 0). No-op while metrics are
/// disabled.
pub fn counter_add(name: &str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    *lock_unpoisoned(&REGISTRY).counters.entry(name.to_string()).or_insert(0) += v;
}

/// Sets the named counter to an absolute value — for copying externally
/// accumulated totals (e.g. `SchedStats`) into the registry. No-op while
/// metrics are disabled.
pub fn counter_set(name: &str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    lock_unpoisoned(&REGISTRY).counters.insert(name.to_string(), v);
}

/// Records one observation into the named histogram. No-op while metrics
/// are disabled.
pub fn observe(name: &str, v: f64) {
    if !metrics_enabled() {
        return;
    }
    lock_unpoisoned(&REGISTRY)
        .hists
        .entry(name.to_string())
        .or_insert(Hist { count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 })
        .observe(v);
}

/// A snapshot of the global registry.
pub fn registry() -> Registry {
    lock_unpoisoned(&REGISTRY).clone()
}

// ---------------------------------------------------------------------------
// Measured-cost feedback (GRADPIM_COST=measured)
// ---------------------------------------------------------------------------

static MEASURED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
/// 0 = follow the environment, 1 = forced on, 2 = forced off.
static COST_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// True when measured-cost feedback is enabled: `GRADPIM_COST=measured`
/// in the environment, or a [`set_cost_feedback`] override. Dispatch
/// *order* is the only thing cost feedback can change — results are
/// order-independent by the scheduler's contract — so flipping this
/// never perturbs reports.
pub fn cost_feedback() -> bool {
    match COST_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env::cost_measured(),
    }
}

/// Overrides [`cost_feedback`]: `Some(on)` forces, `None` returns to the
/// environment variable. For tests and embedders.
pub fn set_cost_feedback(force: Option<bool>) {
    COST_OVERRIDE.store(
        match force {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        },
        Ordering::Relaxed,
    );
}

/// Records the observed duration of one sweep point, keyed by its
/// workload shape (see `gradpim_engine::sched::cost::cost_key`). Last
/// observation wins. No-op unless [`cost_feedback`] is on.
pub fn record_measured_cost(key: &str, nanos: u64) {
    if !cost_feedback() {
        return;
    }
    lock_unpoisoned(&MEASURED).insert(key.to_string(), nanos.max(1));
}

/// The last recorded duration for a workload-shape key, if any.
pub fn measured_cost(key: &str) -> Option<u64> {
    lock_unpoisoned(&MEASURED).get(key).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests are serialized: spans, metrics, and flags are
    /// process-wide.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        lock_unpoisoned(&TEST_LOCK)
    }

    #[test]
    fn spans_are_noops_until_enabled() {
        let _s = serial();
        reset();
        set_tracing(false);
        {
            let _span = span("off.span", "test");
            instant("off.instant", "test");
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn span_guard_records_a_contained_interval() {
        let _s = serial();
        reset();
        set_tracing(true);
        {
            let _outer = span("outer", "test");
            let _inner = span("inner", "test");
        }
        instant("mark", "test");
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 3, "{spans:?}");
        let find = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let (outer, inner, mark) = (find("outer"), find("inner"), find("mark"));
        assert_eq!(outer.ph, Ph::Complete);
        assert_eq!(mark.ph, Ph::Instant);
        assert_eq!(mark.dur_us, 0);
        // Drop order closes inner first; truncation keeps containment.
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(outer.pid, COORDINATOR_PID);
        assert!(outer.tid >= 1);
        // Drained means gone.
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn lazy_span_names_are_not_built_when_off() {
        let _s = serial();
        reset();
        set_tracing(false);
        let _span = span_lazy(|| unreachable!("name built while tracing is off"), "test");
    }

    #[test]
    fn injected_spans_come_back_out_of_drain() {
        let _s = serial();
        reset();
        let foreign = SpanRec {
            name: "shard.work".into(),
            cat: "phase".into(),
            ph: Ph::Complete,
            ts_us: 10,
            dur_us: 5,
            pid: 3,
            tid: 1,
        };
        inject(vec![foreign.clone()]);
        assert_eq!(drain_spans(), vec![foreign]);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _s = serial();
        reset();
        set_tracing(true);
        instant("main", "test");
        std::thread::spawn(|| instant("child", "test")).join().unwrap();
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid, "{spans:?}");
    }

    #[test]
    fn metrics_registry_accumulates_and_renders_deterministically() {
        let _s = serial();
        reset();
        set_metrics(true);
        counter_add("b.count", 2);
        counter_add("b.count", 3);
        counter_set("a.total", 7);
        observe("wall_ns", 4.0);
        observe("wall_ns", 2.0);
        set_metrics(false);
        let reg = registry();
        assert_eq!(reg.counters.get("a.total"), Some(&7));
        assert_eq!(reg.counters.get("b.count"), Some(&5));
        let h = reg.hists.get("wall_ns").unwrap();
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 2.0, 4.0, 6.0));
        let expected = "{\n  \"counters\": {\n    \"a.total\": 7,\n    \"b.count\": 5\n  },\n  \
                        \"histograms\": {\n    \"wall_ns\": {\"count\": 2, \"min\": 2, \
                        \"max\": 4, \"sum\": 6}\n  }\n}\n";
        assert_eq!(reg.to_json(), expected);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _s = serial();
        reset();
        set_metrics(false);
        counter_add("ghost", 1);
        observe("ghost_h", 1.0);
        assert!(registry().is_empty());
        assert_eq!(registry().to_json(), "{\n  \"counters\": {},\n  \"histograms\": {}\n}\n");
    }

    #[test]
    fn measured_costs_follow_the_feedback_flag() {
        let _s = serial();
        reset();
        set_cost_feedback(Some(false));
        record_measured_cost("sweep/1/2/3", 500);
        assert_eq!(measured_cost("sweep/1/2/3"), None);
        set_cost_feedback(Some(true));
        assert!(cost_feedback());
        record_measured_cost("sweep/1/2/3", 500);
        record_measured_cost("sweep/1/2/3", 900); // last wins
        assert_eq!(measured_cost("sweep/1/2/3"), Some(900));
        record_measured_cost("sweep/0/0/0", 0); // clamped: costs are never 0
        assert_eq!(measured_cost("sweep/0/0/0"), Some(1));
        set_cost_feedback(None);
    }

    #[test]
    fn registry_json_escapes_metric_names() {
        let mut reg = Registry::default();
        reg.counters.insert("weird\"name\n".into(), 1);
        let json = reg.to_json();
        assert!(json.contains("\"weird\\\"name\\n\": 1"), "{json}");
    }
}
